package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"l3/internal/overload"
)

// proxyHandler is the data-plane HTTP handler: pick a backend, forward,
// record the outcome, retry transport errors that never reached the client,
// hedge slow idempotent requests, and enforce the request's latency budget.
// Its own work — pick, breaker, budget, deadline math, hedge bookkeeping,
// metric recording, status-writer pooling — is allocation-free; what
// net/http, ReverseProxy and the context machinery allocate per request is
// theirs (and the honest cost of running on real sockets, which
// BENCH_serve.json reports separately from this layer's allocs/op).
type proxyHandler struct {
	router  *Router
	nowFn   func() time.Duration
	budget  *retryBudget
	retries *atomic.Int64
	hedges  *atomic.Int64
	panics  *atomic.Int64
	hedge   *hedgeTracker

	// transport issues hedged attempts directly (two ReverseProxies cannot
	// share one ResponseWriter); it is the same transport the backends'
	// ReverseProxies use.
	transport http.RoundTripper

	// admitter gates every request before backend pick (nil = overload
	// control off). Shed requests answer 429/503 + Retry-After without
	// touching the retry budget, the router or any upstream socket.
	admitter *overload.WallAdmitter

	maxAttempts    int
	requestTimeout time.Duration
	perTryTimeout  time.Duration

	inflight atomic.Int64
	draining atomic.Bool
}

func newProxyHandler(router *Router, nowFn func() time.Duration, cfg Config, transport http.RoundTripper, admitter *overload.WallAdmitter) *proxyHandler {
	if transport == nil {
		transport = http.DefaultTransport
	}
	return &proxyHandler{
		router:         router,
		nowFn:          nowFn,
		budget:         newRetryBudget(cfg.RetryBudgetRatio),
		retries:        &atomic.Int64{},
		hedges:         &atomic.Int64{},
		panics:         &atomic.Int64{},
		hedge:          newHedgeTracker(cfg.HedgePercentile, cfg.HedgeMinDelay),
		transport:      transport,
		admitter:       admitter,
		maxAttempts:    cfg.MaxAttempts,
		requestTimeout: cfg.RequestTimeout,
		perTryTimeout:  cfg.PerTryTimeout,
	}
}

func (p *proxyHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if p.draining.Load() {
		// Connections that were mid-request at drain start finish normally
		// (Shutdown waits for them); fresh requests on lingering keep-alive
		// connections are turned away.
		w.Header().Set("Connection", "close")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	p.inflight.Add(1)
	defer p.inflight.Add(-1)

	reqStart := p.nowFn()
	budget := deadlineBudget(req, p.requestTimeout)
	if budget > 0 {
		ctx, cancel := context.WithTimeout(req.Context(), budget)
		defer cancel()
		req = req.WithContext(ctx)
	}

	// Admission runs before the retry-budget deposit and before any backend
	// pick: a shed request must cost nothing downstream. A queued request
	// parks inside Admit (bounded by the drop law's MaxWait flush and its
	// own deadline above); its wait spends the request budget, which the
	// attempt loop's remaining-time math then propagates downstream. The
	// admitted fast path is allocation-free.
	if p.admitter != nil {
		v := p.admitter.Admit(req.Context(), time.Now(), overload.ParseTier(req.Header.Get(HeaderCriticality)))
		if v.Shed() {
			shedResponse(w, v)
			return
		}
		defer p.admitter.Release()
	}

	p.budget.deposit()
	sw := acquireStatusWriter(w)
	defer releaseStatusWriter(sw)
	// Registered after the release defer so it runs first, while sw is
	// still this request's: one panicking round trip (or handler bug) must
	// not kill the proxy process.
	defer p.recoverPanic(w, sw)

	// A consumed request body cannot be replayed to a second backend;
	// bodyless requests (the health-check and benchmark shape) retry
	// freely.
	canRetry := req.Body == nil || req.Body == http.NoBody

	if d := p.hedge.hedgeAfter(); d > 0 && hedgeEligible(req) {
		p.serveHedged(w, req, d)
		return
	}

	// Per-try bound: explicit config, else an even share of the budget so
	// a stalled first attempt leaves time to retry.
	perTry := p.perTryTimeout
	if perTry <= 0 && budget > 0 {
		perTry = budget / time.Duration(p.maxAttempts)
	}

	var b *Backend
	for attempt := 0; ; attempt++ {
		start := p.nowFn()
		if attempt == 0 {
			b = p.router.Pick(start)
		} else {
			b = p.router.PickAvoiding(start, b)
		}
		if b == nil {
			http.Error(w, "no backends", http.StatusServiceUnavailable)
			return
		}
		if budget > 0 {
			remaining := budget - (start - reqStart)
			if remaining <= 0 {
				http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
				return
			}
			// Propagate the shrunken budget downstream, the header-level
			// half of deadline propagation.
			req.Header.Set(HeaderDeadline, strconv.FormatInt(remaining.Milliseconds(), 10))
		}
		tryReq := req
		if perTry > 0 {
			tryCtx, tryCancel := context.WithTimeout(req.Context(), perTry)
			tryReq = req.WithContext(tryCtx)
			defer tryCancel()
		}
		b.inflight.Inc()
		sw.beginAttempt()
		b.rp.ServeHTTP(sw, tryReq)
		latency := p.nowFn() - start
		b.inflight.Dec()

		ok := sw.transportErr == nil && sw.status() < http.StatusInternalServerError
		b.Record(p.nowFn(), latency, ok)
		if p.admitter != nil {
			// Every attempt feeds the backend's adaptive limiter: RTT is the
			// Vegas congestion signal, a failure the AIMD decrease.
			p.admitter.Observe(b.idx, latency, ok)
		}
		if ok {
			p.hedge.observe(latency)
			return
		}
		// Retry only when the client saw nothing: a transport error before
		// any bytes were written, within the attempt cap and the request's
		// deadline, paid for from the budget. 5xx responses already
		// streamed to the client are final.
		expired := req.Context().Err() != nil
		if expired || sw.transportErr == nil || sw.wroteAny || !canRetry || attempt+1 >= p.maxAttempts || !p.budget.withdraw() {
			if sw.transportErr != nil && !sw.wroteAny {
				if expired {
					http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
				} else {
					http.Error(w, "upstream unreachable", http.StatusBadGateway)
				}
			}
			return
		}
		p.retries.Add(1)
	}
}

// recoverPanic is the handler's last line of defense, deferred around every
// request: convert a panic into a 500 (when nothing has been written) and
// keep the process alive. http.ErrAbortHandler passes through — it is
// net/http's own control flow for deliberately torn-down responses.
func (p *proxyHandler) recoverPanic(w http.ResponseWriter, sw *statusWriter) {
	r := recover()
	if r == nil {
		return
	}
	if r == http.ErrAbortHandler {
		panic(r)
	}
	p.panics.Add(1)
	if !sw.wroteAny {
		http.Error(w, "internal proxy error", http.StatusInternalServerError)
	}
}

// hedgeOutcome is one hedged attempt's result.
type hedgeOutcome struct {
	idx  int
	b    *Backend
	resp *http.Response
	err  error
	// start is the attempt's launch instant on the proxy clock.
	start time.Duration
}

// serveHedged forwards a hedge-eligible request through the transport
// directly: launch the weighted pick, and if no response lands within the
// learned delay, launch one hedge to a different backend — first acceptable
// response wins, the loser is cancelled. Transport errors still retry within
// MaxAttempts, so the hedged path is never less resilient than the plain
// one. The path allocates (clones, channels); it exists to cut tail
// latency, and only engages once the tracker has a distribution.
func (p *proxyHandler) serveHedged(w http.ResponseWriter, req *http.Request, delay time.Duration) {
	maxLaunches := p.maxAttempts + 1 // the retry cap plus the one hedge
	results := make(chan hedgeOutcome, maxLaunches)
	cancels := make([]context.CancelFunc, 0, maxLaunches)
	outstanding, launched := 0, 0
	var last *Backend

	launch := func(b *Backend) {
		ctx, cancel := context.WithCancel(req.Context())
		cancels = append(cancels, cancel)
		idx := len(cancels) - 1
		out := req.Clone(ctx)
		// The backend's Director rewrites the URL exactly as its
		// ReverseProxy would; RequestURI is client-side only and must be
		// empty on a transport request.
		b.rp.Director(out)
		out.RequestURI = ""
		b.inflight.Inc()
		outstanding++
		launched++
		last = b
		start := p.nowFn()
		go func() {
			// This goroutine is outside the handler's recoverPanic; a
			// panicking RoundTripper must surface as a transport error, not
			// kill the process.
			defer func() {
				if r := recover(); r != nil {
					p.panics.Add(1)
					results <- hedgeOutcome{idx: idx, b: b, err: fmt.Errorf("transport panic: %v", r), start: start}
				}
			}()
			resp, err := p.transport.RoundTrip(out)
			results <- hedgeOutcome{idx: idx, b: b, resp: resp, err: err, start: start}
		}()
	}

	finish := func(winner hedgeOutcome) {
		// Cancel every losing attempt (the winner's context must survive
		// until its body reaches the client; net/http cancels it at request
		// end), then drain their results off-path so no goroutine blocks on
		// the channel's bookkeeping. A losing hedge cut short by our cancel
		// is not the backend's failure and records only success — but a
		// losing PRIMARY was at least the learned delay slower than the
		// hedge that rescued it, and that slowness is the backend's own:
		// without a failure record here, a stalled backend whose every
		// request is saved by a hedge would never trip its breaker.
		for i, cancel := range cancels {
			if i != winner.idx {
				cancel()
			}
		}
		if outstanding > 0 {
			go func(n int) {
				for i := 0; i < n; i++ {
					o := <-results
					latency := p.nowFn() - o.start
					switch {
					case o.err == nil && o.resp.StatusCode < http.StatusInternalServerError:
						o.b.Record(p.nowFn(), latency, true)
						o.resp.Body.Close()
					case o.err == nil:
						o.resp.Body.Close()
					case o.idx == 0:
						o.b.Record(p.nowFn(), latency, false)
					}
					o.b.inflight.Dec()
				}
			}(outstanding)
		}
	}

	now := p.nowFn()
	first := p.router.Pick(now)
	if first == nil {
		http.Error(w, "no backends", http.StatusServiceUnavailable)
		return
	}
	launch(first)

	hedgeTimer := time.NewTimer(delay)
	defer hedgeTimer.Stop()
	hedged := false
	var fallback *hedgeOutcome

	for {
		var o hedgeOutcome
		if !hedged {
			select {
			case o = <-results:
			case <-hedgeTimer.C:
				hedged = true
				// Hedge to a different backend, paid from the shared retry
				// budget so hedging cannot storm either.
				if nb := p.router.PickAvoiding(p.nowFn(), last); nb != nil && nb != last && p.budget.withdraw() {
					p.hedges.Add(1)
					launch(nb)
				}
				continue
			}
		} else {
			o = <-results
		}
		outstanding--
		latency := p.nowFn() - o.start
		ok := o.err == nil && o.resp.StatusCode < http.StatusInternalServerError
		o.b.Record(p.nowFn(), latency, ok)
		if p.admitter != nil {
			p.admitter.Observe(o.b.idx, latency, ok)
		}
		o.b.inflight.Dec()
		if ok {
			p.hedge.observe(latency)
			if fallback != nil {
				// A held 5xx fallback is superseded by this success; its
				// body must still be closed.
				fallback.resp.Body.Close()
			}
			finish(o)
			p.deliver(w, o)
			return
		}
		if o.err == nil {
			// A whole 5xx response: hold the first as the fallback answer,
			// matching the plain path where 5xx is final.
			if fallback == nil {
				fallback = &o
			} else {
				o.resp.Body.Close()
			}
		}
		if outstanding > 0 {
			continue
		}
		// Nothing left in flight: retry a transport error within the caps.
		if o.err != nil && fallback == nil && req.Context().Err() == nil &&
			launched < p.maxAttempts && p.budget.withdraw() {
			if nb := p.router.PickAvoiding(p.nowFn(), o.b); nb != nil {
				p.retries.Add(1)
				launch(nb)
				continue
			}
		}
		switch {
		case fallback != nil:
			finish(*fallback)
			p.deliver(w, *fallback)
		case req.Context().Err() != nil:
			finish(o)
			http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
		default:
			finish(o)
			http.Error(w, "upstream unreachable", http.StatusBadGateway)
		}
		return
	}
}

// deliver copies a transport response to the client, stamping the serving
// backend (the ReverseProxy path stamps via ModifyResponse; this path is
// ours to stamp).
func (p *proxyHandler) deliver(w http.ResponseWriter, o hedgeOutcome) {
	h := w.Header()
	for k, vv := range o.resp.Header {
		for _, v := range vv {
			h.Add(k, v)
		}
	}
	h.Set(HeaderBackend, o.b.Name)
	w.WriteHeader(o.resp.StatusCode)
	io.Copy(w, o.resp.Body)
	o.resp.Body.Close()
}

// Inflight returns the requests currently inside the handler.
func (p *proxyHandler) Inflight() int64 { return p.inflight.Load() }

// Retries returns proxy-level retry attempts launched.
func (p *proxyHandler) Retries() int64 { return p.retries.Load() }

// Hedges returns hedge attempts launched.
func (p *proxyHandler) Hedges() int64 { return p.hedges.Load() }

// Panics returns panics recovered in the request path.
func (p *proxyHandler) Panics() int64 { return p.panics.Load() }

// setDraining flips the handler into drain mode.
func (p *proxyHandler) setDraining() { p.draining.Store(true) }

// proxyErrorHandler is installed on every backend's ReverseProxy: it files
// the transport error on the status writer instead of writing 502, so the
// handler loop can retry on another backend.
func proxyErrorHandler(rw http.ResponseWriter, req *http.Request, err error) {
	if sw, ok := rw.(*statusWriter); ok {
		sw.transportErr = err
		return
	}
	rw.WriteHeader(http.StatusBadGateway)
}

// statusWriter wraps the client's ResponseWriter to observe what an attempt
// did: the status code, whether any bytes were written, and any transport
// error the ReverseProxy hit. Instances recycle through a pool so the
// steady-state handler allocates none.
type statusWriter struct {
	http.ResponseWriter
	code         int
	wroteAny     bool
	transportErr error
}

var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

func acquireStatusWriter(w http.ResponseWriter) *statusWriter {
	sw := statusWriterPool.Get().(*statusWriter)
	sw.ResponseWriter = w
	sw.code = 0
	sw.wroteAny = false
	sw.transportErr = nil
	return sw
}

func releaseStatusWriter(sw *statusWriter) {
	sw.ResponseWriter = nil
	statusWriterPool.Put(sw)
}

// beginAttempt clears per-attempt state before a retry.
func (sw *statusWriter) beginAttempt() {
	sw.transportErr = nil
}

func (sw *statusWriter) status() int {
	if sw.code == 0 {
		return http.StatusOK
	}
	return sw.code
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.wroteAny = true
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wroteAny = true
	return sw.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer, which
// ReverseProxy uses for flushing.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// retryBudget is a Finagle/Linkerd-style token bucket shared by all
// retries: each logical request deposits ratio tokens, each retry withdraws
// one, bounding the steady-state retry ratio so a dead backend cannot turn
// offered load into a retry storm. Token arithmetic is integer milli-tokens
// on one atomic, CAS-looped, allocation-free.
type retryBudget struct {
	tokens     atomic.Int64 // milli-tokens
	ratioMilli int64
	burstMilli int64
}

func newRetryBudget(ratio float64) *retryBudget {
	b := &retryBudget{ratioMilli: int64(ratio * 1000)}
	burst := 100 * ratio
	if burst < 10 {
		burst = 10
	}
	b.burstMilli = int64(burst * 1000)
	b.tokens.Store(b.burstMilli) // start full so cold starts can retry
	return b
}

func (b *retryBudget) deposit() {
	if b.ratioMilli <= 0 {
		return
	}
	for {
		cur := b.tokens.Load()
		next := cur + b.ratioMilli
		if next > b.burstMilli {
			next = b.burstMilli
		}
		if next == cur || b.tokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

func (b *retryBudget) withdraw() bool {
	if b.ratioMilli <= 0 {
		return false
	}
	for {
		cur := b.tokens.Load()
		if cur < 1000 {
			return false
		}
		if b.tokens.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}

// String describes the handler for logs.
func (p *proxyHandler) String() string {
	return fmt.Sprintf("proxy{inflight=%d retries=%d}", p.Inflight(), p.Retries())
}
