package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// proxyHandler is the data-plane HTTP handler: pick a backend, forward,
// record the outcome, retry transport errors that never reached the client.
// Its own work — pick, breaker, budget, metric recording, status-writer
// pooling — is allocation-free; what net/http and ReverseProxy allocate per
// request is theirs (and the honest cost of running on real sockets, which
// BENCH_serve.json reports separately from this layer's allocs/op).
type proxyHandler struct {
	router  *Router
	nowFn   func() time.Duration
	budget  *retryBudget
	retries *atomic.Int64

	maxAttempts int

	inflight atomic.Int64
	draining atomic.Bool
}

func newProxyHandler(router *Router, nowFn func() time.Duration, maxAttempts int, budgetRatio float64) *proxyHandler {
	return &proxyHandler{
		router:      router,
		nowFn:       nowFn,
		budget:      newRetryBudget(budgetRatio),
		retries:     &atomic.Int64{},
		maxAttempts: maxAttempts,
	}
}

func (p *proxyHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if p.draining.Load() {
		// Connections that were mid-request at drain start finish normally
		// (Shutdown waits for them); fresh requests on lingering keep-alive
		// connections are turned away.
		w.Header().Set("Connection", "close")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	p.inflight.Add(1)
	defer p.inflight.Add(-1)

	p.budget.deposit()
	sw := acquireStatusWriter(w)
	defer releaseStatusWriter(sw)

	// A consumed request body cannot be replayed to a second backend;
	// bodyless requests (the health-check and benchmark shape) retry
	// freely.
	canRetry := req.Body == nil || req.Body == http.NoBody

	var b *Backend
	for attempt := 0; ; attempt++ {
		start := p.nowFn()
		if attempt == 0 {
			b = p.router.Pick(start)
		} else {
			b = p.router.PickAvoiding(start, b)
		}
		if b == nil {
			http.Error(w, "no backends", http.StatusServiceUnavailable)
			return
		}
		b.inflight.Inc()
		sw.beginAttempt()
		b.rp.ServeHTTP(sw, req)
		latency := p.nowFn() - start
		b.inflight.Dec()

		ok := sw.transportErr == nil && sw.status() < http.StatusInternalServerError
		b.Record(p.nowFn(), latency, ok)
		if ok {
			return
		}
		// Retry only when the client saw nothing: a transport error before
		// any bytes were written, within the attempt cap, paid for from
		// the budget. 5xx responses already streamed to the client are
		// final.
		if sw.transportErr == nil || sw.wroteAny || !canRetry || attempt+1 >= p.maxAttempts || !p.budget.withdraw() {
			if sw.transportErr != nil && !sw.wroteAny {
				http.Error(w, "upstream unreachable", http.StatusBadGateway)
			}
			return
		}
		p.retries.Add(1)
	}
}

// Inflight returns the requests currently inside the handler.
func (p *proxyHandler) Inflight() int64 { return p.inflight.Load() }

// Retries returns proxy-level retry attempts launched.
func (p *proxyHandler) Retries() int64 { return p.retries.Load() }

// setDraining flips the handler into drain mode.
func (p *proxyHandler) setDraining() { p.draining.Store(true) }

// proxyErrorHandler is installed on every backend's ReverseProxy: it files
// the transport error on the status writer instead of writing 502, so the
// handler loop can retry on another backend.
func proxyErrorHandler(rw http.ResponseWriter, req *http.Request, err error) {
	if sw, ok := rw.(*statusWriter); ok {
		sw.transportErr = err
		return
	}
	rw.WriteHeader(http.StatusBadGateway)
}

// statusWriter wraps the client's ResponseWriter to observe what an attempt
// did: the status code, whether any bytes were written, and any transport
// error the ReverseProxy hit. Instances recycle through a pool so the
// steady-state handler allocates none.
type statusWriter struct {
	http.ResponseWriter
	code         int
	wroteAny     bool
	transportErr error
}

var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

func acquireStatusWriter(w http.ResponseWriter) *statusWriter {
	sw := statusWriterPool.Get().(*statusWriter)
	sw.ResponseWriter = w
	sw.code = 0
	sw.wroteAny = false
	sw.transportErr = nil
	return sw
}

func releaseStatusWriter(sw *statusWriter) {
	sw.ResponseWriter = nil
	statusWriterPool.Put(sw)
}

// beginAttempt clears per-attempt state before a retry.
func (sw *statusWriter) beginAttempt() {
	sw.transportErr = nil
}

func (sw *statusWriter) status() int {
	if sw.code == 0 {
		return http.StatusOK
	}
	return sw.code
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.wroteAny = true
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wroteAny = true
	return sw.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer, which
// ReverseProxy uses for flushing.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// retryBudget is a Finagle/Linkerd-style token bucket shared by all
// retries: each logical request deposits ratio tokens, each retry withdraws
// one, bounding the steady-state retry ratio so a dead backend cannot turn
// offered load into a retry storm. Token arithmetic is integer milli-tokens
// on one atomic, CAS-looped, allocation-free.
type retryBudget struct {
	tokens     atomic.Int64 // milli-tokens
	ratioMilli int64
	burstMilli int64
}

func newRetryBudget(ratio float64) *retryBudget {
	b := &retryBudget{ratioMilli: int64(ratio * 1000)}
	burst := 100 * ratio
	if burst < 10 {
		burst = 10
	}
	b.burstMilli = int64(burst * 1000)
	b.tokens.Store(b.burstMilli) // start full so cold starts can retry
	return b
}

func (b *retryBudget) deposit() {
	if b.ratioMilli <= 0 {
		return
	}
	for {
		cur := b.tokens.Load()
		next := cur + b.ratioMilli
		if next > b.burstMilli {
			next = b.burstMilli
		}
		if next == cur || b.tokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

func (b *retryBudget) withdraw() bool {
	if b.ratioMilli <= 0 {
		return false
	}
	for {
		cur := b.tokens.Load()
		if cur < 1000 {
			return false
		}
		if b.tokens.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}

// String describes the handler for logs.
func (p *proxyHandler) String() string {
	return fmt.Sprintf("proxy{inflight=%d retries=%d}", p.Inflight(), p.Retries())
}
