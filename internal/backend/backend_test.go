package backend

import (
	"testing"
	"time"

	"l3/internal/sim"
)

func constProfile(d time.Duration) Profile {
	return func(time.Duration, *sim.Rand) (time.Duration, bool) { return d, true }
}

func TestServeCompletesAfterExecTime(t *testing.T) {
	e := sim.NewEngine()
	r := New(e, sim.NewRand(1), Config{Name: "b"}, constProfile(100*time.Millisecond))
	var res Result
	var at time.Duration
	r.Serve(func(rr Result) { res, at = rr, e.Now() })
	e.RunUntil(time.Second)
	if at != 100*time.Millisecond {
		t.Fatalf("completed at %v, want 100ms", at)
	}
	if res.Latency != 100*time.Millisecond || !res.Success || res.Rejected {
		t.Fatalf("result = %+v", res)
	}
	if r.Served() != 1 {
		t.Fatalf("Served = %d", r.Served())
	}
}

func TestConcurrencyLimitQueues(t *testing.T) {
	e := sim.NewEngine()
	r := New(e, sim.NewRand(1), Config{Concurrency: 1}, constProfile(100*time.Millisecond))
	var done []time.Duration
	var lat []time.Duration
	for i := 0; i < 3; i++ {
		r.Serve(func(rr Result) {
			done = append(done, e.Now())
			lat = append(lat, rr.Latency)
		})
	}
	if r.Inflight() != 3 || r.QueueLen() != 2 {
		t.Fatalf("inflight=%d queue=%d", r.Inflight(), r.QueueLen())
	}
	e.RunUntil(time.Second)
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("completion %d at %v, want %v", i, done[i], w)
		}
		if lat[i] != w { // queue wait included
			t.Fatalf("latency %d = %v, want %v", i, lat[i], w)
		}
	}
	if r.MaxQueueObserved() != 2 {
		t.Fatalf("MaxQueueObserved = %d", r.MaxQueueObserved())
	}
}

func TestParallelWorkersDontQueue(t *testing.T) {
	e := sim.NewEngine()
	r := New(e, sim.NewRand(1), Config{Concurrency: 3}, constProfile(100*time.Millisecond))
	count := 0
	for i := 0; i < 3; i++ {
		r.Serve(func(rr Result) {
			count++
			if rr.Latency != 100*time.Millisecond {
				t.Errorf("latency = %v, want no queue wait", rr.Latency)
			}
		})
	}
	e.RunUntil(time.Second)
	if count != 3 {
		t.Fatalf("completed %d, want 3", count)
	}
}

func TestQueueOverflowSheds(t *testing.T) {
	e := sim.NewEngine()
	r := New(e, sim.NewRand(1), Config{Concurrency: 1, QueueCapacity: 2}, constProfile(time.Second))
	results := make([]Result, 0, 4)
	for i := 0; i < 4; i++ {
		r.Serve(func(rr Result) { results = append(results, rr) })
	}
	e.RunUntil(10 * time.Millisecond)
	// The 4th request (1 executing + 2 queued) must have been shed already.
	if len(results) != 1 || !results[0].Rejected {
		t.Fatalf("results = %+v, want one rejection", results)
	}
	if r.RejectedCount() != 1 {
		t.Fatalf("RejectedCount = %d", r.RejectedCount())
	}
	e.RunUntil(10 * time.Second)
	if len(results) != 4 {
		t.Fatalf("total completions = %d, want 4", len(results))
	}
}

func TestProfileDrivesSuccess(t *testing.T) {
	e := sim.NewEngine()
	calls := 0
	profile := func(time.Duration, *sim.Rand) (time.Duration, bool) {
		calls++
		return time.Millisecond, calls%2 == 0
	}
	r := New(e, sim.NewRand(1), Config{}, profile)
	var succ, fail int
	for i := 0; i < 10; i++ {
		r.Serve(func(rr Result) {
			if rr.Success {
				succ++
			} else {
				fail++
			}
		})
	}
	e.RunUntil(time.Second)
	if succ != 5 || fail != 5 {
		t.Fatalf("succ=%d fail=%d", succ, fail)
	}
}

func TestProfileSeesArrivalTime(t *testing.T) {
	e := sim.NewEngine()
	var seen []time.Duration
	profile := func(now time.Duration, _ *sim.Rand) (time.Duration, bool) {
		seen = append(seen, now)
		return time.Millisecond, true
	}
	r := New(e, sim.NewRand(1), Config{}, profile)
	e.At(5*time.Second, func() { r.Serve(func(Result) {}) })
	e.RunUntil(time.Minute)
	if len(seen) != 1 || seen[0] != 5*time.Second {
		t.Fatalf("profile times = %v", seen)
	}
}

func TestNegativeExecClamped(t *testing.T) {
	e := sim.NewEngine()
	r := New(e, sim.NewRand(1), Config{}, func(time.Duration, *sim.Rand) (time.Duration, bool) {
		return -time.Second, true
	})
	ok := false
	r.Serve(func(rr Result) { ok = rr.Latency == 0 })
	e.RunUntil(time.Second)
	if !ok {
		t.Fatal("negative exec time not clamped to zero")
	}
}

func TestInflightTracksLifecycle(t *testing.T) {
	e := sim.NewEngine()
	r := New(e, sim.NewRand(1), Config{Concurrency: 2}, constProfile(100*time.Millisecond))
	for i := 0; i < 3; i++ {
		r.Serve(func(Result) {})
	}
	if r.Inflight() != 3 {
		t.Fatalf("inflight = %d, want 3", r.Inflight())
	}
	e.RunUntil(150 * time.Millisecond)
	if r.Inflight() != 1 {
		t.Fatalf("inflight after first wave = %d, want 1", r.Inflight())
	}
	e.RunUntil(time.Second)
	if r.Inflight() != 0 {
		t.Fatalf("inflight at end = %d", r.Inflight())
	}
}

func TestSaturationInflatesLatency(t *testing.T) {
	// Offered load above capacity must show rising queue delay — the
	// mechanism behind the paper's rate controller.
	e := sim.NewEngine()
	r := New(e, sim.NewRand(1), Config{Concurrency: 10}, constProfile(100*time.Millisecond))
	// Capacity is 100 req/s; offer 200 req/s for 2 seconds.
	var last Result
	for i := 0; i < 400; i++ {
		e.At(time.Duration(i)*5*time.Millisecond, func() {
			r.Serve(func(rr Result) { last = rr })
		})
	}
	e.RunUntil(time.Minute)
	if last.Latency < 500*time.Millisecond {
		t.Fatalf("saturated latency = %v, want well above the 100ms service time", last.Latency)
	}
}

func TestNilProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil profile did not panic")
		}
	}()
	New(sim.NewEngine(), sim.NewRand(1), Config{}, nil)
}

func TestNilDonePanics(t *testing.T) {
	r := New(sim.NewEngine(), sim.NewRand(1), Config{}, constProfile(time.Millisecond))
	defer func() {
		if recover() == nil {
			t.Fatal("nil done did not panic")
		}
	}()
	r.Serve(nil)
}

func TestDefaultsApplied(t *testing.T) {
	r := New(sim.NewEngine(), sim.NewRand(1), Config{Name: "x"}, constProfile(time.Millisecond))
	if r.Concurrency() != 64 || r.Name() != "x" {
		t.Fatalf("defaults: concurrency=%d name=%q", r.Concurrency(), r.Name())
	}
}
