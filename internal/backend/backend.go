// Package backend models a service deployment receiving traffic: a pool of
// concurrent workers fed by a FIFO queue, whose intrinsic service time and
// success probability follow a pluggable, time-varying Profile. Queueing is
// what makes overload visible: as offered load approaches the worker pool's
// capacity, queue wait inflates observed latency — the saturation behaviour
// L3's rate controller exists to avoid (§3.2) and that the paper observed
// near 1000 RPS on its testbed (§5.3.1).
package backend

import (
	"fmt"
	"time"

	"l3/internal/sim"
)

// Result is the outcome of one served (or rejected) request, as seen at the
// backend: Latency covers queue wait plus execution, not network transit.
type Result struct {
	Latency  time.Duration
	Success  bool
	Rejected bool // true when shed due to a full queue
}

// Profile draws the intrinsic behaviour of the backend for one request
// arriving at virtual time now: its execution time and whether it succeeds.
type Profile func(now time.Duration, rng *sim.Rand) (exec time.Duration, success bool)

// Config parameterises a Replica.
type Config struct {
	// Name identifies the deployment (for errors and instrumentation).
	Name string
	// Concurrency is the number of requests executed in parallel
	// (default 64 — several replicas' worth of request workers).
	Concurrency int
	// QueueCapacity bounds the wait queue; requests beyond it are shed
	// with Rejected results (default 4096).
	QueueCapacity int
}

// Replica is one backend deployment. It is event-driven on the engine and
// not safe for concurrent use (the simulation is single-threaded).
type Replica struct {
	engine  *sim.Engine
	rng     *sim.Rand
	cfg     Config
	profile Profile

	busy  int
	queue []queued

	// down marks a crashed deployment: requests fail fast (connection
	// refused) until Restart. epoch invalidates executions that were
	// in-flight when the crash hit.
	down  bool
	epoch uint64

	served   uint64
	rejected uint64
	crashes  uint64
	maxQueue int

	// freeExecs recycles per-request execution state (and its pre-bound
	// completion callback) between requests; the replica is single-threaded
	// on its engine, so the free list needs no lock.
	freeExecs []*execution
}

// execution is the pooled state of one in-flight request: what the
// completion event needs, plus the event callback bound once per struct so
// the steady-state serve path allocates nothing.
type execution struct {
	r       *Replica
	wait    time.Duration
	exec    time.Duration
	epoch   uint64
	success bool
	done    func(Result)
	fire    func()
}

func (r *Replica) getExec() *execution {
	if n := len(r.freeExecs); n > 0 {
		ex := r.freeExecs[n-1]
		r.freeExecs[n-1] = nil
		r.freeExecs = r.freeExecs[:n-1]
		return ex
	}
	ex := &execution{r: r}
	ex.fire = func() { ex.complete() }
	return ex
}

// complete is the execution-finished event: recycle first (the callback may
// issue nested requests), then settle the request with the caller.
func (ex *execution) complete() {
	r, wait, exec, epoch, success, done := ex.r, ex.wait, ex.exec, ex.epoch, ex.success, ex.done
	ex.done = nil
	r.freeExecs = append(r.freeExecs, ex)
	if epoch != r.epoch {
		// The deployment crashed while this request was executing: the
		// connection died with it. The client has waited exec anyway.
		done(Result{Latency: wait + exec, Success: false})
		return
	}
	r.busy--
	r.served++
	r.next()
	done(Result{Latency: wait + exec, Success: success})
}

// connRefusedDelay is how quickly a request to a crashed deployment fails —
// the RST round-trip of a dead endpoint, much faster than a timeout.
const connRefusedDelay = time.Millisecond

type queued struct {
	enqueued time.Duration
	done     func(Result)
}

// New returns a Replica. profile must not be nil.
func New(engine *sim.Engine, rng *sim.Rand, cfg Config, profile Profile) *Replica {
	if profile == nil {
		panic(fmt.Sprintf("backend %q: nil profile", cfg.Name))
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 64
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 4096
	}
	return &Replica{engine: engine, rng: rng, cfg: cfg, profile: profile}
}

// Serve accepts one request arriving now; done is invoked exactly once when
// the request completes (or immediately, on the next engine step, if shed).
func (r *Replica) Serve(done func(Result)) {
	if done == nil {
		panic(fmt.Sprintf("backend %q: Serve with nil done", r.cfg.Name))
	}
	if r.down {
		r.engine.After(connRefusedDelay, func() {
			done(Result{Latency: connRefusedDelay, Success: false})
		})
		return
	}
	if r.busy < r.cfg.Concurrency {
		r.start(0, done)
		return
	}
	if len(r.queue) >= r.cfg.QueueCapacity {
		r.rejected++
		r.engine.After(0, func() {
			done(Result{Rejected: true})
		})
		return
	}
	r.queue = append(r.queue, queued{enqueued: r.engine.Now(), done: done})
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
}

func (r *Replica) start(wait time.Duration, done func(Result)) {
	r.busy++
	now := r.engine.Now()
	exec, success := r.profile(now, r.rng)
	if exec < 0 {
		exec = 0
	}
	ex := r.getExec()
	ex.wait, ex.exec, ex.epoch, ex.success, ex.done = wait, exec, r.epoch, success, done
	r.engine.ScheduleAfter(exec, ex.fire)
}

func (r *Replica) next() {
	if len(r.queue) == 0 || r.busy >= r.cfg.Concurrency {
		return
	}
	q := r.queue[0]
	r.queue = r.queue[1:]
	r.start(r.engine.Now()-q.enqueued, q.done)
}

// SetConcurrency resizes the worker pool (autoscaling). Growing drains
// queued requests into the new workers immediately; shrinking lets
// in-flight executions finish and takes effect as workers free up.
// Non-positive values are clamped to 1.
func (r *Replica) SetConcurrency(n int) {
	if n < 1 {
		n = 1
	}
	r.cfg.Concurrency = n
	for r.busy < r.cfg.Concurrency && len(r.queue) > 0 {
		r.next()
	}
}

// Crash takes the deployment down, as a pod kill would: every queued
// request fails immediately, every executing request's connection dies (the
// client sees a failure once its execution time elapses), and subsequent
// requests are refused fast until Restart. Crashing an already-down replica
// is a no-op.
func (r *Replica) Crash() {
	if r.down {
		return
	}
	r.down = true
	r.epoch++
	r.crashes++
	queue := r.queue
	r.queue = nil
	r.busy = 0
	for _, q := range queue {
		q := q
		r.engine.After(0, func() {
			q.done(Result{Latency: r.engine.Now() - q.enqueued, Success: false})
		})
	}
}

// Restart brings a crashed deployment back. A positive slowStart models a
// cold start: the worker pool comes back at a quarter capacity and ramps
// linearly to full over the window, so a freshly restarted backend saturates
// easily — the transient L3's symptom steering is supposed to notice.
// Restarting a live replica is a no-op.
func (r *Replica) Restart(slowStart time.Duration) {
	if !r.down {
		return
	}
	r.down = false
	if slowStart <= 0 {
		return
	}
	target := r.cfg.Concurrency
	epoch := r.epoch
	const steps = 4
	r.SetConcurrency(target / steps)
	for i := 2; i <= steps; i++ {
		frac := i
		r.engine.After(slowStart*time.Duration(i-1)/(steps-1), func() {
			if r.down || epoch != r.epoch {
				return // crashed again mid-ramp
			}
			r.SetConcurrency(target * frac / steps)
		})
	}
}

// Down reports whether the deployment is currently crashed.
func (r *Replica) Down() bool { return r.down }

// Crashes returns how many times the deployment has crashed.
func (r *Replica) Crashes() uint64 { return r.crashes }

// Utilization returns busy workers over pool size, in [0, 1+]: queued work
// shows up as saturation (1.0) rather than pushing past it.
func (r *Replica) Utilization() float64 {
	if r.cfg.Concurrency == 0 {
		return 0
	}
	return float64(r.busy) / float64(r.cfg.Concurrency)
}

// Inflight returns the number of requests executing or queued.
func (r *Replica) Inflight() int { return r.busy + len(r.queue) }

// QueueLen returns the number of queued (not yet executing) requests.
func (r *Replica) QueueLen() int { return len(r.queue) }

// Served returns the number of completed requests.
func (r *Replica) Served() uint64 { return r.served }

// RejectedCount returns the number of shed requests.
func (r *Replica) RejectedCount() uint64 { return r.rejected }

// MaxQueueObserved returns the high-water mark of the queue.
func (r *Replica) MaxQueueObserved() int { return r.maxQueue }

// Name returns the configured deployment name.
func (r *Replica) Name() string { return r.cfg.Name }

// Concurrency returns the worker-pool size.
func (r *Replica) Concurrency() int { return r.cfg.Concurrency }
