package sim

import (
	"fmt"
	"sort"
	"testing"
	"time"
)

const la = 4 * time.Millisecond // test lookahead

// buildPingPong wires a deterministic cross-shard workload: each shard runs a
// local ticker that sends a message one lookahead ahead to the next shard,
// the receiver logs and replies, and a control-engine ticker logs scrape-like
// rounds. The trace records (who, virtual time, detail) for every action.
func buildPingPong(nshards int, trace *[]string) *ShardedEngine {
	se := NewSharded(nshards, la)
	for i := 0; i < nshards; i++ {
		sh := se.Shard(i)
		eng := sh.Engine()
		i := i
		var tick func()
		tick = func() {
			now := eng.Now()
			*trace = append(*trace, fmt.Sprintf("shard%d tick @%v", i, now))
			dst := (i + 1) % nshards
			sh.Send(dst, now+la, func() {
				*trace = append(*trace, fmt.Sprintf("shard%d recv from %d @%v", dst, i, se.Shard(dst).Engine().Now()))
			})
			sh.SendControl(now+la, func() {
				*trace = append(*trace, fmt.Sprintf("control from %d @%v", i, se.Control().Now()))
			})
			eng.Schedule(now+3*time.Millisecond, tick)
		}
		eng.Schedule(time.Duration(i+1)*time.Millisecond, tick)
	}
	se.Control().Every(5*time.Millisecond, func() {
		*trace = append(*trace, fmt.Sprintf("control tick @%v", se.Control().Now()))
	})
	return se
}

func TestShardedDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []string {
		var trace []string
		se := buildPingPong(4, &trace)
		se.SetWorkers(workers)
		se.RunUntil(100 * time.Millisecond)
		return trace
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("empty trace")
	}
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: trace length %d != %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: trace[%d] = %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}

func TestShardedCrossSendDeliversAtRequestedTime(t *testing.T) {
	se := NewSharded(2, la)
	var at time.Duration
	s0 := se.Shard(0)
	s0.Engine().Schedule(1*time.Millisecond, func() {
		// Honouring the conservative contract: delivery ≥ send + lookahead.
		s0.Send(1, s0.Engine().Now()+la+time.Millisecond, func() {
			at = se.Shard(1).Engine().Now()
		})
	})
	se.RunUntil(20 * time.Millisecond)
	if want := 1*time.Millisecond + la + time.Millisecond; at != want {
		t.Fatalf("cross-shard event fired at %v, want %v", at, want)
	}
}

func TestShardedControlRunsWithShardsAtBarrier(t *testing.T) {
	// A control event at an arbitrary time (not a lookahead multiple) must
	// execute with every shard clock advanced to exactly its timestamp.
	se := NewSharded(3, la)
	for i := 0; i < 3; i++ {
		eng := se.Shard(i).Engine()
		var spin func()
		spin = func() { eng.Schedule(eng.Now()+time.Millisecond, spin) }
		eng.Schedule(0, spin)
	}
	const at = 7500 * time.Microsecond // between barriers
	var clocks []time.Duration
	se.Control().Schedule(at, func() {
		for i := 0; i < 3; i++ {
			clocks = append(clocks, se.Shard(i).Engine().Now())
		}
	})
	se.RunUntil(20 * time.Millisecond)
	if len(clocks) != 3 {
		t.Fatal("control event did not fire")
	}
	for i, c := range clocks {
		if c != at {
			t.Fatalf("shard %d clock at control time = %v, want %v", i, c, at)
		}
	}
}

func TestShardedControlDeliveryClampsToBarrier(t *testing.T) {
	// A shard→control send with a too-early timestamp lands at the next
	// barrier, never in the control engine's past.
	se := NewSharded(2, la)
	sh := se.Shard(0)
	var at time.Duration
	sh.Engine().Schedule(1*time.Millisecond, func() {
		sh.SendControl(0, func() { at = se.Control().Now() })
	})
	se.RunUntil(20 * time.Millisecond)
	if at < 1*time.Millisecond {
		t.Fatalf("control event ran at %v, in the past of its send", at)
	}
	if at > la {
		t.Fatalf("control event ran at %v, after the first barrier %v", at, la)
	}
}

func TestShardedRunUntilFlushesEventsAtBoundary(t *testing.T) {
	// Control event exactly at t schedules shard work at t: the zero-width
	// window loop must still flush it, like Engine.RunUntil does.
	se := NewSharded(2, la)
	var ran bool
	se.Control().Schedule(10*time.Millisecond, func() {
		se.Shard(1).Engine().Schedule(10*time.Millisecond, func() { ran = true })
	})
	se.RunUntil(10 * time.Millisecond)
	if !ran {
		t.Fatal("shard event scheduled at the boundary did not run")
	}
	if got := se.Now(); got != 10*time.Millisecond {
		t.Fatalf("Now() = %v, want 10ms", got)
	}
}

func TestShardedCancelAfterMigrationIsNoOp(t *testing.T) {
	// Satellite: a Timer handle must stay dead after its event struct is
	// recycled and reused by a cross-shard delivery. Shard 0 arms and fires a
	// timer, a later cross-shard message reuses the recycled event struct,
	// then the stale handle cancels — the migrated event must still fire.
	se := NewSharded(2, la)
	s0, s1 := se.Shard(0), se.Shard(1)

	var stale *Timer
	s0.Engine().Schedule(0, func() {
		stale = s0.Engine().At(1*time.Millisecond, func() {})
	})

	var migrated bool
	s1.Engine().Schedule(2*time.Millisecond, func() {
		// Cross-shard rebind: delivery at 2ms+la schedules on shard 0, and
		// with the free list warm it reuses the struct behind `stale`.
		s1.Send(0, s1.Engine().Now()+la, func() {
			migrated = true
		})
	})
	// Cancel the stale handle from the control timeline after the migrated
	// event is enqueued but before it fires.
	se.Control().Schedule(2*time.Millisecond+la/2, func() {
		stale.Cancel()
	})

	se.RunUntil(20 * time.Millisecond)
	if !migrated {
		t.Fatal("stale Timer.Cancel resurrected a recycled event and killed a cross-shard delivery")
	}
}

func TestShardedMinimalLookahead(t *testing.T) {
	// lookahead = 1ns is the degenerate WAN config (min one-way delay ≈ 0):
	// every window is a sliver, so correctness leans entirely on adaptive
	// coalescing jumping across the empty ones. The trace must match a
	// generous-lookahead run of the same model at every worker count.
	run := func(lookahead time.Duration, workers int) []string {
		var trace []string
		se := NewSharded(2, lookahead)
		for i := 0; i < 2; i++ {
			sh := se.Shard(i)
			eng := sh.Engine()
			i := i
			var tick func()
			tick = func() {
				now := eng.Now()
				trace = append(trace, fmt.Sprintf("shard%d tick @%v", i, now))
				dst := 1 - i
				// Delivery la beyond both lookaheads under test, so the
				// conservative contract holds for each.
				sh.Send(dst, now+la, func() {
					trace = append(trace, fmt.Sprintf("shard%d recv @%v", dst, se.Shard(dst).Engine().Now()))
				})
				eng.Schedule(now+3*time.Millisecond, tick)
			}
			eng.Schedule(time.Duration(i+1)*time.Millisecond, tick)
		}
		se.SetWorkers(workers)
		se.RunUntil(30 * time.Millisecond)
		return trace
	}
	// Worker count must not change the trace at the degenerate lookahead.
	want := run(time.Nanosecond, 1)
	if len(want) == 0 {
		t.Fatal("empty trace")
	}
	got := run(time.Nanosecond, 2)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("lookahead=1ns workers=2 diverged:\n got %v\nwant %v", got, want)
	}
	// Lookahead is part of the model configuration — it decides where
	// barriers fall and so how FIFO ties at equal timestamps break — but it
	// must not change *which* events fire or when. The sorted traces of a
	// 1ns and a generous-lookahead run are identical.
	wide := run(la, 1)
	a, b := append([]string(nil), want...), append([]string(nil), wide...)
	sort.Strings(a)
	sort.Strings(b)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("event sets differ between lookaheads:\n 1ns %v\n wide %v", a, b)
	}
}

func TestShardedSelfSendMergesCanonically(t *testing.T) {
	// A shard may Send to itself — the message rides the same outbox slab
	// and delivers at the next barrier like any other. When several sources
	// (including the destination itself) target one shard with equal
	// timestamps, the merged FIFO order is source shard id then send order,
	// at every worker count.
	run := func(workers int) ([]string, []string) {
		var got0, got1 []string // per-destination logs: no cross-shard writes
		se := NewSharded(2, la)
		s0, s1 := se.Shard(0), se.Shard(1)
		s0.Engine().Schedule(time.Millisecond, func() {
			at := s0.Engine().Now() + la
			s0.Send(0, at, func() { got0 = append(got0, "src0 #1") })
			s0.Send(0, at, func() { got0 = append(got0, "src0 #2") })
		})
		s1.Engine().Schedule(time.Millisecond, func() {
			at := s1.Engine().Now() + la
			s1.Send(0, at, func() { got0 = append(got0, "src1 #1") })
			s1.Send(1, at, func() { got1 = append(got1, "src1 self") })
		})
		se.SetWorkers(workers)
		se.RunUntil(20 * time.Millisecond)
		return got0, got1
	}
	want0 := []string{"src0 #1", "src0 #2", "src1 #1"}
	want1 := []string{"src1 self"}
	for _, workers := range []int{1, 2} {
		got0, got1 := run(workers)
		if fmt.Sprint(got0) != fmt.Sprint(want0) {
			t.Fatalf("workers=%d: shard 0 saw %v, want %v", workers, got0, want0)
		}
		if fmt.Sprint(got1) != fmt.Sprint(want1) {
			t.Fatalf("workers=%d: shard 1 self-send saw %v, want %v", workers, got1, want1)
		}
	}
}

func TestShardedSteadyStateDoesNotAllocate(t *testing.T) {
	// Pins the tentpole's allocation work: once the event free lists and
	// outbox slabs are warm, windows — including their cross-shard sends,
	// barrier bookkeeping and mailbox drains — run allocation-free on the
	// serial path. (Worker fan-out allocates only at its once-per-RunUntil
	// lazy spawn, which BenchmarkShardBarrier measures amortized.)
	se := NewSharded(4, la)
	noop := func() {}
	for i := 0; i < 4; i++ {
		sh := se.Shard(i)
		eng := sh.Engine()
		i := i
		var tick func()
		tick = func() {
			now := eng.Now()
			sh.Send((i+1)%4, now+la, noop)
			eng.Schedule(now+time.Millisecond, tick)
		}
		eng.Schedule(0, tick)
	}
	se.RunUntil(50 * time.Millisecond) // warm slabs and free lists
	next := se.Now()
	avg := testing.AllocsPerRun(50, func() {
		next += 10 * time.Millisecond
		se.RunUntil(next)
	})
	if avg != 0 {
		t.Fatalf("steady-state RunUntil allocates %v allocs/run, want 0", avg)
	}
}

func TestShardedStatsCountWindowsSendsEvents(t *testing.T) {
	var trace []string
	se := buildPingPong(2, &trace)
	se.RunUntil(50 * time.Millisecond)
	st := se.Stats()
	if st.Windows == 0 || st.CrossSends == 0 || st.Events == 0 {
		t.Fatalf("stats not accounted: %+v", st)
	}
	if st.Events < st.CrossSends {
		t.Fatalf("fired events %d < cross sends %d", st.Events, st.CrossSends)
	}
}

func TestShardedPanicsOnBadConstruction(t *testing.T) {
	for _, tc := range []struct {
		n  int
		la time.Duration
	}{{0, la}, {2, 0}, {2, -time.Second}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSharded(%d, %v) did not panic", tc.n, tc.la)
				}
			}()
			NewSharded(tc.n, tc.la)
		}()
	}
}
