// Package sim provides a deterministic discrete-event simulation engine.
//
// All time in the simulator is virtual: an Engine owns a clock that only
// advances when the next scheduled event fires. Components schedule callbacks
// with At/After and the engine executes them in timestamp order (FIFO among
// events with equal timestamps). Together with the seeded random sources in
// this package, a simulation run is reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Engine is a single-threaded discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with NewEngine. Engine is not safe
// for concurrent use: the simulation model is event-driven, not goroutine
// driven.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	running bool
}

// NewEngine returns an engine with its clock at zero and an empty event
// queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time, measured from the start of the
// simulation.
func (e *Engine) Now() time.Duration {
	return e.now
}

// Pending returns the number of scheduled events that have not yet fired.
func (e *Engine) Pending() int {
	return len(e.queue)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is an error in the model, so it is clamped to "now" and the event fires on
// the next step. The returned Timer can be used to cancel the event.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return &Timer{event: ev}
}

// After schedules fn to run d from the current virtual time. Negative
// durations are clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Every schedules fn to run every interval, starting one interval from now,
// until the returned Timer is cancelled. The interval must be positive.
func (e *Engine) Every(interval time.Duration, fn func()) *Timer {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive interval %v", interval))
	}
	t := &Timer{}
	var tick func()
	tick = func() {
		fn()
		if !t.cancelled {
			t.event = e.After(interval, tick).event
		}
	}
	t.event = e.After(interval, tick).event
	return t
}

// Step executes the next scheduled event, advancing the clock to its
// timestamp. It reports whether an event was executed; false means the queue
// is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the clock would pass t or the
// queue empties. Events scheduled exactly at t are executed. The clock is
// left at t even if the queue drained earlier, so subsequent After calls are
// relative to t.
func (e *Engine) RunUntil(t time.Duration) {
	if e.running {
		panic("sim: RunUntil re-entered from within an event callback")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && e.queue[0].at <= t {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
	}
	if e.now < t {
		e.now = t
	}
}

// Run executes events until the queue is empty and returns the final clock
// value. A model with a self-rescheduling ticker never drains, so most
// simulations should prefer RunUntil.
func (e *Engine) Run() time.Duration {
	for e.Step() {
	}
	return e.now
}

// Timer is a handle to a scheduled event.
type Timer struct {
	event     *event
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. For timers returned by Every, Cancel
// also stops all future ticks.
func (t *Timer) Cancel() {
	if t == nil || t.event == nil {
		return
	}
	t.cancelled = true
	t.event.cancelled = true
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
