// Package sim provides a deterministic discrete-event simulation engine.
//
// All time in the simulator is virtual: an Engine owns a clock that only
// advances when the next scheduled event fires. Components schedule callbacks
// with At/After and the engine executes them in timestamp order (FIFO among
// events with equal timestamps). Together with the seeded random sources in
// this package, a simulation run is reproducible bit-for-bit.
//
// The event queue is the simulator's hottest data structure — every simulated
// request schedules several events — so the engine recycles fired events
// through a free list and keeps the heap hand-rolled (no interface dispatch).
// High-rate callers that never cancel use Schedule/ScheduleAfter, which skip
// the Timer handle allocation of At/After entirely.
package sim

import (
	"fmt"
	"time"
)

// Engine is a single-threaded discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with NewEngine. Engine is not safe
// for concurrent use: the simulation model is event-driven, not goroutine
// driven.
type Engine struct {
	now     time.Duration
	queue   []*event // binary min-heap on (at, seq)
	seq     uint64
	fired   uint64
	running bool
	free    []*event // recycled events, reused by schedule
}

// NewEngine returns an engine with its clock at zero and an empty event
// queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time, measured from the start of the
// simulation.
func (e *Engine) Now() time.Duration {
	return e.now
}

// Pending returns the number of scheduled events that have not yet fired.
func (e *Engine) Pending() int {
	return len(e.queue)
}

// Fired returns the number of events executed so far — the self-metric the
// sharded harness aggregates into events/second.
func (e *Engine) Fired() uint64 {
	return e.fired
}

// NextAt returns the timestamp of the earliest scheduled event, ok=false
// when the queue is empty. A cancelled-but-unpopped event still reports its
// time; the barrier scheduler treats that as a (harmless) early stop.
func (e *Engine) NextAt() (time.Duration, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// schedule enqueues fn at absolute time t (clamped to now) and returns the
// backing event. Events come from the free list when one is available, so
// the steady state allocates nothing.
func (e *Engine) schedule(t time.Duration, fn func()) *event {
	if fn == nil {
		panic("sim: schedule called with nil callback")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.cancelled = t, e.seq, fn, false
	e.push(ev)
	return ev
}

// recycle returns a fired (or cancelled-and-popped) event to the free list.
// The event's seq is left intact: a stale Timer still holding it compares
// its remembered seq before cancelling, so recycled events cannot be
// cancelled through old handles once reused.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is an error in the model, so it is clamped to "now" and the event fires on
// the next step. The returned Timer can be used to cancel the event.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	ev := e.schedule(t, fn)
	return &Timer{event: ev, seq: ev.seq}
}

// After schedules fn to run d from the current virtual time. Negative
// durations are clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Schedule is At without the cancellation handle: the event cannot be
// cancelled, and nothing is allocated once the engine's free list is warm.
// The data plane's per-request events (WAN hops, executions) go through
// here.
func (e *Engine) Schedule(t time.Duration, fn func()) {
	e.schedule(t, fn)
}

// ScheduleAfter is After without the cancellation handle; see Schedule.
func (e *Engine) ScheduleAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, fn)
}

// AtTimer schedules fn at absolute time t through a caller-owned Timer,
// rebinding the handle in place. Cancellable high-rate callers (request
// deadlines, hedge launches, retry backoffs) embed one Timer per pooled
// request and reschedule through it, so the steady state allocates no
// handles. The timer's previous schedule must have fired or been cancelled;
// rebinding an armed timer would orphan the pending event.
func (e *Engine) AtTimer(t *Timer, at time.Duration, fn func()) {
	if t == nil {
		panic("sim: AtTimer called with nil timer")
	}
	ev := e.schedule(at, fn)
	t.event, t.seq, t.cancelled = ev, ev.seq, false
}

// Every schedules fn to run every interval, starting one interval from now,
// until the returned Timer is cancelled. The interval must be positive.
func (e *Engine) Every(interval time.Duration, fn func()) *Timer {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive interval %v", interval))
	}
	t := &Timer{}
	var tick func()
	tick = func() {
		fn()
		if !t.cancelled {
			ev := e.schedule(e.now+interval, tick)
			t.event, t.seq = ev, ev.seq
		}
	}
	ev := e.schedule(e.now+interval, tick)
	t.event, t.seq = ev, ev.seq
	return t
}

// Step executes the next scheduled event, advancing the clock to its
// timestamp. It reports whether an event was executed; false means the queue
// is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		fn := ev.fn
		e.recycle(ev)
		e.fired++
		fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the clock would pass t or the
// queue empties. Events scheduled exactly at t are executed. The clock is
// left at t even if the queue drained earlier, so subsequent After calls are
// relative to t.
func (e *Engine) RunUntil(t time.Duration) {
	if e.running {
		panic("sim: RunUntil re-entered from within an event callback")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && e.queue[0].at <= t {
		ev := e.pop()
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		fn := ev.fn
		e.recycle(ev)
		e.fired++
		fn()
	}
	if e.now < t {
		e.now = t
	}
}

// Run executes events until the queue is empty and returns the final clock
// value. A model with a self-rescheduling ticker never drains, so most
// simulations should prefer RunUntil.
func (e *Engine) Run() time.Duration {
	for e.Step() {
	}
	return e.now
}

// Timer is a handle to a scheduled event. It remembers the event's schedule
// sequence number so that cancelling after the event fired (and its backing
// struct was recycled into a new event) is a safe no-op.
type Timer struct {
	event     *event
	seq       uint64
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. For timers returned by Every, Cancel
// also stops all future ticks.
func (t *Timer) Cancel() {
	if t == nil || t.event == nil {
		return
	}
	t.cancelled = true
	if t.event.seq == t.seq {
		t.event.cancelled = true
	}
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
}

// before is the heap order: timestamp, then schedule sequence (FIFO among
// equal timestamps). The (at, seq) pair is unique per event, so the order is
// total and pop order is independent of the heap's internal layout — the
// determinism guarantee does not depend on this implementation.
func (ev *event) before(o *event) bool {
	if ev.at != o.at {
		return ev.at < o.at
	}
	return ev.seq < o.seq
}

// push adds ev to the heap (sift-up).
func (e *Engine) push(ev *event) {
	q := append(e.queue, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q[i].before(q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	e.queue = q
}

// pop removes and returns the heap's minimum (sift-down).
func (e *Engine) pop() *event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q[r].before(q[l]) {
			m = r
		}
		if !q[m].before(q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	e.queue = q
	return top
}
