package sim

import (
	"testing"
	"time"
)

func TestEngineRunsEventsInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3*time.Second, func() { got = append(got, 3) })
	e.At(1*time.Second, func() { got = append(got, 1) })
	e.At(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOAmongEqualTimestamps(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("equal-timestamp order = %v, want FIFO", got)
		}
	}
}

func TestEngineClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.After(5*time.Second, func() { at = e.Now() })
	e.Run()
	if at != 5*time.Second {
		t.Fatalf("Now() inside event = %v, want 5s", at)
	}
}

func TestEngineAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var second time.Duration
	e.After(2*time.Second, func() {
		e.After(3*time.Second, func() { second = e.Now() })
	})
	e.Run()
	if second != 5*time.Second {
		t.Fatalf("nested After fired at %v, want 5s", second)
	}
}

func TestEngineRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.At(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (inclusive boundary)", len(fired))
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events after second run, want 3", len(fired))
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("clock = %v, want 10s even though queue drained earlier", e.Now())
	}
}

func TestEngineSchedulingInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	var fired time.Duration
	e.At(4*time.Second, func() {
		e.At(time.Second, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 4*time.Second {
		t.Fatalf("past event fired at %v, want clamped to 4s", fired)
	}
}

func TestTimerCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.After(time.Second, func() { fired = true })
	tm.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerCancelIsIdempotentAndNilSafe(t *testing.T) {
	e := NewEngine()
	tm := e.After(time.Second, func() {})
	tm.Cancel()
	tm.Cancel()
	var nilTimer *Timer
	nilTimer.Cancel() // must not panic
	e.Run()
}

func TestEveryTicksAtInterval(t *testing.T) {
	e := NewEngine()
	var ticks []time.Duration
	tm := e.Every(time.Second, func() { ticks = append(ticks, e.Now()) })
	e.RunUntil(3500 * time.Millisecond)
	tm.Cancel()
	e.RunUntil(10 * time.Second)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		if ticks[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
}

func TestEveryCancelFromWithinCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tm *Timer
	tm = e.Every(time.Second, func() {
		count++
		if count == 2 {
			tm.Cancel()
		}
	})
	e.RunUntil(time.Minute)
	if count != 2 {
		t.Fatalf("ticker fired %d times, want 2 (cancelled from callback)", count)
	}
}

func TestPendingCountsUnfiredEvents(t *testing.T) {
	e := NewEngine()
	e.After(time.Second, func() {})
	e.After(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after Run = %d, want 0", e.Pending())
	}
}

func TestAtNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	NewEngine().At(time.Second, nil)
}

func TestEveryNonPositiveIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewEngine().Every(0, func() {})
}

func TestAtTimerRebindsHandleInPlace(t *testing.T) {
	e := NewEngine()
	var tm Timer
	fired := []string{}
	e.AtTimer(&tm, time.Second, func() { fired = append(fired, "a") })
	tm.Cancel()
	// Rebinding after cancel reuses the same handle for a fresh event.
	e.AtTimer(&tm, 2*time.Second, func() { fired = append(fired, "b") })
	e.Run()
	if len(fired) != 1 || fired[0] != "b" {
		t.Fatalf("fired = %v, want only the rebound event", fired)
	}
	// After firing, the handle rebinds again and a stale Cancel of the
	// fired schedule must not touch the new one.
	e.AtTimer(&tm, 3*time.Second, func() { fired = append(fired, "c") })
	old := tm // stale copy of the armed handle
	e.Run()
	old.Cancel() // fired already: no-op
	e.AtTimer(&tm, 4*time.Second, func() { fired = append(fired, "d") })
	old.Cancel() // stale seq: must not cancel the new event
	e.Run()
	if len(fired) != 3 || fired[1] != "c" || fired[2] != "d" {
		t.Fatalf("fired = %v, want [b c d]", fired)
	}
}

func TestAtTimerNilTimerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AtTimer(nil, ...) did not panic")
		}
	}()
	NewEngine().AtTimer(nil, time.Second, func() {})
}

func TestAtTimerDoesNotAllocateWhenWarm(t *testing.T) {
	e := NewEngine()
	var tm Timer
	fn := func() {}
	e.AtTimer(&tm, 0, fn)
	e.Run()
	allocs := testing.AllocsPerRun(500, func() {
		e.AtTimer(&tm, e.Now(), fn)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("warm AtTimer allocates %.1f objects, want 0", allocs)
	}
}
