package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRandDeterministicForSameSeed(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRandDifferentSeedsDiverge(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical 64-bit draws across different seeds", same)
	}
}

func TestForkIsIndependentOfSiblingConsumption(t *testing.T) {
	// Forking first and consuming the parent afterwards must not change the
	// fork's stream.
	parent1 := NewRand(7)
	fork1 := parent1.Fork()
	seq1 := []uint64{fork1.Uint64(), fork1.Uint64(), fork1.Uint64()}

	parent2 := NewRand(7)
	fork2 := parent2.Fork()
	for i := 0; i < 50; i++ {
		parent2.Float64()
	}
	seq2 := []uint64{fork2.Uint64(), fork2.Uint64(), fork2.Uint64()}

	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("fork stream perturbed by parent consumption at %d", i)
		}
	}
}

func TestBoolEdgeCases(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolFrequencyTracksProbability(t *testing.T) {
	r := NewRand(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %.4f, want ~0.30", got)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("mean = %.3f, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("stddev = %.3f, want ~2", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(0.25)
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("Exp mean = %.4f, want ~0.25", mean)
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRand(1).Exp(0)
}

func TestLogNormalFromQuantilesRoundTrip(t *testing.T) {
	d := NewLogNormalFromQuantiles(50*time.Millisecond, 400*time.Millisecond)
	if got := d.Median(); absDur(got-50*time.Millisecond) > time.Millisecond {
		t.Fatalf("Median = %v, want ~50ms", got)
	}
	if got := d.P99(); absDur(got-400*time.Millisecond) > 2*time.Millisecond {
		t.Fatalf("P99 = %v, want ~400ms", got)
	}
}

func TestLogNormalFromQuantilesEmpiricalQuantiles(t *testing.T) {
	d := NewLogNormalFromQuantiles(100*time.Millisecond, 900*time.Millisecond)
	r := NewRand(17)
	const n = 100000
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = d.Sample(r)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	median := samples[n/2]
	p99 := samples[n*99/100]
	if ratio := median.Seconds() / 0.1; ratio < 0.97 || ratio > 1.03 {
		t.Fatalf("empirical median = %v, want ~100ms", median)
	}
	if ratio := p99.Seconds() / 0.9; ratio < 0.90 || ratio > 1.10 {
		t.Fatalf("empirical P99 = %v, want ~900ms", p99)
	}
}

func TestLogNormalFromQuantilesDegenerateInputs(t *testing.T) {
	// p99 below median is clamped to the median (constant distribution).
	d := NewLogNormalFromQuantiles(100*time.Millisecond, 10*time.Millisecond)
	r := NewRand(23)
	for i := 0; i < 100; i++ {
		if got := d.Sample(r); absDur(got-100*time.Millisecond) > time.Millisecond {
			t.Fatalf("degenerate sample = %v, want exactly ~100ms", got)
		}
	}
	// Non-positive median is clamped to a tiny positive value.
	d = NewLogNormalFromQuantiles(0, 0)
	if d.Median() <= 0 {
		t.Fatalf("Median = %v, want positive after clamping", d.Median())
	}
}

func TestLogNormalSamplesAlwaysPositiveProperty(t *testing.T) {
	r := NewRand(29)
	f := func(medMs, spread uint16) bool {
		median := time.Duration(int(medMs)%2000+1) * time.Millisecond
		p99 := median + time.Duration(spread)*time.Millisecond
		d := NewLogNormalFromQuantiles(median, p99)
		for i := 0; i < 32; i++ {
			if d.Sample(r) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
