// Sharded deterministic execution: a ShardedEngine runs N per-shard Engines
// in conservatively synchronized lookahead windows — the classic conservative
// parallel discrete-event recipe — plus one control Engine whose events run
// exclusively at global barriers.
//
// The contract that makes sharded runs byte-identical at any worker count is
// the same one the repo's -parallel fan-out honours: the *decomposition* is
// fixed (one logical shard per model partition, e.g. per cluster) and the
// worker count only decides how many shards execute their window at the same
// wall-clock moment. Because shard state is disjoint during a window and
// cross-shard messages are merged in a canonical order at each barrier, the
// event trace of every shard is a pure function of the seed — scheduling
// cannot leak in.
//
// Synchronization protocol:
//
//   - Time advances in windows of at most `lookahead`, the caller-supplied
//     lower bound on every cross-shard delivery delay (the WAN model's
//     minimum one-way delay). A message sent during window (w0, w1] carries
//     a delivery time ≥ send time + lookahead > w1, so delivering mailboxes
//     at the w1 barrier is always early enough: no shard can ever receive an
//     event in its past.
//   - At each barrier, outboxes drain into destination queues in canonical
//     order — destination, then source shard id, then send order — so the
//     FIFO tie-break among equal timestamps is identical however the window
//     was scheduled across workers.
//   - The control engine never runs concurrently with shard windows. Its
//     next event time caps the window, all shards run exactly up to that
//     barrier, and the control events execute alone while every shard is
//     paused — which is what lets scrape rounds, controller split pushes and
//     chaos injections read and mutate cross-shard state without locks and
//     land on the owning shard's timeline at an exact virtual time.
//
// Execution machinery (wall-clock only — none of it can affect output):
//
//   - Windows fan out over a pool of persistent workers synchronised by a
//     sense-style parker barrier: the coordinator bumps an epoch and opens
//     each worker's parker (one atomic store + at most one non-blocking
//     channel send); workers claim shards off a shared atomic cursor and the
//     last arriver opens the coordinator's parker. No per-window goroutine
//     spawns, no WaitGroup round-trips, no allocations. Workers are spawned
//     lazily at the first multi-shard window of a RunUntil and joined at its
//     exit, so idle engines hold no goroutines.
//   - Consecutive windows with no undelivered cross-shard traffic coalesce:
//     when every outbox is empty the barrier jumps straight to the earliest
//     pending shard event (the skipped windows were provably no-ops — any
//     message sent later still delivers ≥ lookahead after its send time, and
//     the control engine's next event still caps the jump). Figure S1 spends
//     most of its 3 750 windows idle between request waves; coalescing folds
//     those into a handful of barriers without reordering any delivery.
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// xmsg is one cross-shard (or shard→control) delivery: a callback and the
// absolute virtual time it should fire at on the destination timeline.
type xmsg struct {
	at time.Duration
	fn func()
}

// Shard is one deterministic event-loop partition of a ShardedEngine. Its
// embedded Engine must only be driven by the ShardedEngine's barrier loop;
// components owned by the shard (backends, load generators, per-shard
// metrics) schedule on Engine() exactly as they would on a standalone one.
type Shard struct {
	id  int
	se  *ShardedEngine
	eng *Engine
	// outbox collects outgoing messages per destination shard; the last
	// slot addresses the control engine. Only this shard's own execution
	// appends, so no locking is needed. Slabs are recycled: deliver trims
	// them to length zero but keeps capacity, so the steady state batches
	// a whole window's sends with no allocation.
	outbox [][]xmsg
	// pendingOut counts undelivered messages across all outbox slots. Only
	// this shard's execution writes it; the coordinator reads it between
	// windows (the barrier orders the accesses). It lets deliver skip
	// sources — and RunUntil skip entire barriers — without scanning boxes.
	pendingOut int
	sends      uint64 // cross-shard sends issued (self-metric)
	_          [32]byte
}

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's event loop.
func (s *Shard) Engine() *Engine { return s.eng }

// Send schedules fn on shard dst's timeline at absolute virtual time at.
// It must be called from this shard's executing context (an event callback
// on its engine) or while all shards are paused at a barrier. Delivery
// happens at the next barrier; an `at` earlier than the barrier is clamped
// to it, which never triggers when at ≥ send time + lookahead — the
// conservative guarantee cross-shard callers must uphold (WAN transit does,
// by construction of the lookahead).
func (s *Shard) Send(dst int, at time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Send called with nil callback")
	}
	s.outbox[dst] = append(s.outbox[dst], xmsg{at: at, fn: fn})
	s.pendingOut++
	s.sends++
}

// SendControl schedules fn on the control engine's timeline. The callback
// runs exclusively — no shard window executes concurrently — at the first
// barrier ≥ at (control deliveries are quantized to barriers so the control
// clock never lags the shards').
func (s *Shard) SendControl(at time.Duration, fn func()) {
	if fn == nil {
		panic("sim: SendControl called with nil callback")
	}
	n := len(s.outbox) - 1
	s.outbox[n] = append(s.outbox[n], xmsg{at: at, fn: fn})
	s.pendingOut++
	s.sends++
}

// ShardStats is the sharded engine's self-accounting.
type ShardStats struct {
	// Windows counts barrier-synchronized windows executed.
	Windows uint64
	// EmptyWindows counts windows that carried no cross-shard traffic —
	// their mailbox drain was skipped entirely. With adaptive coalescing
	// these are windows that still had to stop at a barrier (a control
	// event or the run horizon), not the coalesced-away ones.
	EmptyWindows uint64
	// CrossSends counts cross-shard and shard→control messages exchanged.
	CrossSends uint64
	// Events counts events fired across all shard engines plus the control
	// engine.
	Events uint64
}

// barrierSpins bounds the busy-wait a parker performs before it commits to
// blocking on its channel. Windows are microseconds of work, so the open
// usually lands within the spin phase; Gosched keeps the spin fair on
// machines with fewer cores than workers.
const barrierSpins = 64

// parker is one side of the allocation-free window barrier: a Dekker-style
// handshake between the coordinator (open) and a single waiter (await).
// open stores the new epoch and then — only if the waiter has declared
// itself parked — posts one token on a capacity-1 channel. await spins
// briefly, then declares itself parked and re-checks the epoch before
// blocking. Both sides' atomics are sequentially consistent, so one of the
// two always observes the other: either the waiter sees the new epoch and
// never blocks, or the opener sees parked=1 and posts the token. Stale
// tokens (opener raced a waiter that then saw the epoch without receiving)
// are drained non-blocking before the next park, so they can neither wake a
// future epoch early nor pile up.
type parker struct {
	epoch  atomic.Uint64
	parked atomic.Uint32
	ch     chan struct{}
	_      [40]byte // keep neighbouring parkers off this cache line
}

func newParker(epoch uint64) *parker {
	p := &parker{ch: make(chan struct{}, 1)}
	p.epoch.Store(epoch)
	return p
}

// open releases a waiter blocked in (or entering) await(e).
func (p *parker) open(e uint64) {
	p.epoch.Store(e)
	if p.parked.Load() != 0 {
		select {
		case p.ch <- struct{}{}:
		default:
		}
	}
}

// await blocks until open(e') with e' ≥ e has happened.
func (p *parker) await(e uint64) {
	for spin := 0; spin < barrierSpins; spin++ {
		if p.epoch.Load() >= e {
			return
		}
		runtime.Gosched()
	}
	for p.epoch.Load() < e {
		select { // drain a stale token before committing to park
		case <-p.ch:
		default:
		}
		p.parked.Store(1)
		if p.epoch.Load() >= e {
			break
		}
		<-p.ch
	}
	p.parked.Store(0)
}

// workerPool is the persistent window-execution pool. All cross-goroutine
// state is atomic and padded so the coordinator's window setup touches no
// cache line a spinning worker owns.
type workerPool struct {
	until  atomic.Int64 // barrier of the current window
	_      [56]byte
	cursor atomic.Int64 // next shard index to claim
	_      [56]byte
	remain atomic.Int32 // participants yet to finish the window
	_      [60]byte
	quit   atomic.Bool
	fin    parker // coordinator waits here; last arriver opens it
	epoch  uint64 // current window epoch (coordinator-owned)

	parkers []*parker // one per spawned worker
	wg      sync.WaitGroup
	spawned int
}

// ShardedEngine coordinates N shard engines plus one control engine under
// the conservative-lookahead protocol described in the package comment for
// this file. It is driven from a single goroutine (RunUntil); only the
// shard windows inside one barrier interval fan out across workers.
type ShardedEngine struct {
	shards    []*Shard
	control   *Engine
	lookahead time.Duration
	workers   int
	now       time.Duration
	running   bool
	windows   uint64
	emptyWins uint64
	pool      workerPool
}

// NewSharded returns a sharded engine with n shards, all clocks at zero.
// lookahead must be a positive lower bound on every cross-shard Send delay;
// smaller lookaheads are correct but cost more barriers.
func NewSharded(n int, lookahead time.Duration) *ShardedEngine {
	if n < 1 {
		panic(fmt.Sprintf("sim: NewSharded with %d shards", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewSharded with non-positive lookahead %v", lookahead))
	}
	se := &ShardedEngine{
		shards:    make([]*Shard, n),
		control:   NewEngine(),
		lookahead: lookahead,
		workers:   1,
	}
	se.pool.fin.ch = make(chan struct{}, 1)
	for i := range se.shards {
		se.shards[i] = &Shard{
			id:     i,
			se:     se,
			eng:    NewEngine(),
			outbox: make([][]xmsg, n+1),
		}
	}
	return se
}

// NumShards returns the number of shards.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard returns shard i.
func (se *ShardedEngine) Shard(i int) *Shard { return se.shards[i] }

// Control returns the control engine. Events scheduled on it run
// exclusively at global barriers, with every shard advanced to exactly the
// event's timestamp — the place for scrapers, controllers, electors and
// chaos injectors, whose callbacks touch state across shards.
func (se *ShardedEngine) Control() *Engine { return se.control }

// Lookahead returns the configured conservative lookahead.
func (se *ShardedEngine) Lookahead() time.Duration { return se.lookahead }

// SetWorkers caps how many shards execute a window concurrently. The value
// changes wall-clock speed only, never output: 1 runs windows serially on
// the caller's goroutine. Values below 1 or above the shard count clamp.
func (se *ShardedEngine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(se.shards) {
		n = len(se.shards)
	}
	se.workers = n
}

// Now returns the global virtual low-water mark: every shard clock and the
// control clock are exactly here between RunUntil calls.
func (se *ShardedEngine) Now() time.Duration { return se.now }

// Stats returns the engine's self-accounting.
func (se *ShardedEngine) Stats() ShardStats {
	st := ShardStats{
		Windows:      se.windows,
		EmptyWindows: se.emptyWins,
		Events:       se.control.Fired(),
	}
	for _, sh := range se.shards {
		st.CrossSends += sh.sends
		st.Events += sh.eng.Fired()
	}
	return st
}

// pendingLE reports whether any shard or the control engine still holds an
// event at or before t.
func (se *ShardedEngine) pendingLE(t time.Duration) bool {
	if at, ok := se.control.NextAt(); ok && at <= t {
		return true
	}
	for _, sh := range se.shards {
		if at, ok := sh.eng.NextAt(); ok && at <= t {
			return true
		}
	}
	return false
}

// pendingSends sums undelivered outbox messages across all shards. Safe
// only between windows: shard execution owns its counter inside one.
func (se *ShardedEngine) pendingSends() int {
	n := 0
	for _, sh := range se.shards {
		n += sh.pendingOut
	}
	return n
}

// earliestShardEvent returns the minimum next-event time across shard
// engines, ok=false when every shard queue is empty.
func (se *ShardedEngine) earliestShardEvent() (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, sh := range se.shards {
		if at, ok := sh.eng.NextAt(); ok && (!found || at < min) {
			min = at
			found = true
		}
	}
	return min, found
}

// RunUntil advances all shards and the control engine to t, window by
// window. Like Engine.RunUntil, events scheduled exactly at t execute and
// every clock is left at t.
func (se *ShardedEngine) RunUntil(t time.Duration) {
	if se.running {
		panic("sim: ShardedEngine.RunUntil re-entered")
	}
	se.running = true
	defer func() {
		se.stopWorkers()
		se.running = false
	}()
	for se.now < t || se.pendingLE(t) {
		// The next barrier: one lookahead ahead, capped at t, pulled in to
		// the control engine's next event so control events execute at
		// their exact timestamp with all shards paused there.
		next := se.now + se.lookahead
		if se.pendingSends() == 0 {
			// Adaptive coalescing: with every outbox empty, barriers
			// between now and the earliest pending shard event would be
			// no-ops — nothing to deliver, nothing to execute. Jump the
			// window straight there (or to the horizon when all shard
			// queues are drained). Any message sent during the enlarged
			// window still delivers ≥ lookahead after its send time, which
			// is at or after the jumped-to barrier — the conservative
			// guarantee is untouched. The outbox-empty precondition is
			// load-bearing: control callbacks may Send while shards are
			// paused, and those messages are invisible to shard queues
			// until delivered.
			if at, ok := se.earliestShardEvent(); !ok {
				next = t
			} else if at > next {
				next = at
			}
		}
		if next > t {
			next = t
		}
		if at, ok := se.control.NextAt(); ok && at < next {
			next = at
			if next < se.now {
				next = se.now
			}
		}
		se.runWindow(next)
		if se.pendingSends() > 0 {
			se.deliver(next)
		} else {
			se.emptyWins++
		}
		se.control.RunUntil(next)
		se.windows++
		se.now = next
	}
}

// runClaims executes shard windows claimed off the shared cursor until the
// shard list is exhausted. Both the coordinator and every pool worker run
// this loop, so whichever finishes its claim first picks up the next shard.
func (se *ShardedEngine) runClaims(until time.Duration) {
	for {
		j := int(se.pool.cursor.Add(1)) - 1
		if j >= len(se.shards) {
			return
		}
		se.shards[j].eng.RunUntil(until)
	}
}

// workerLoop is one persistent pool worker: park until the coordinator
// opens the next epoch, run claims, and have the last arriver open the
// coordinator's parker. Quit is checked after each release so stopWorkers
// can join the pool with one open per worker.
func (se *ShardedEngine) workerLoop(p *parker, start uint64) {
	defer se.pool.wg.Done()
	for e := start; ; e++ {
		p.await(e)
		if se.pool.quit.Load() {
			return
		}
		se.runClaims(time.Duration(se.pool.until.Load()))
		if se.pool.remain.Add(-1) == 0 {
			se.pool.fin.open(e)
		}
	}
}

// stopWorkers joins the pool at RunUntil exit, leaving the engine with no
// goroutines between runs (tests construct thousands of engines; parked
// workers would otherwise accumulate).
func (se *ShardedEngine) stopWorkers() {
	p := &se.pool
	if p.spawned == 0 {
		return
	}
	p.quit.Store(true)
	for _, pk := range p.parkers {
		pk.open(p.epoch + 1)
	}
	p.wg.Wait()
	p.quit.Store(false)
	p.parkers = p.parkers[:0]
	p.spawned = 0
}

// runWindow executes every shard's events in (shard clock, until], fanning
// out across the worker cap. Shards share no mutable state during a window
// (that is the decomposition contract), so the work-stealing order cannot
// influence any shard's execution.
func (se *ShardedEngine) runWindow(until time.Duration) {
	w := se.workers
	if w > len(se.shards) {
		w = len(se.shards)
	}
	if w > 1 {
		// Zero-width and control-capped windows often leave work on at most
		// one shard; the fan-out would be pure overhead there.
		busy := 0
		for _, sh := range se.shards {
			if at, ok := sh.eng.NextAt(); ok && at <= until {
				if busy++; busy >= 2 {
					break
				}
			}
		}
		if busy < 2 {
			w = 1
		}
	}
	if w <= 1 {
		for _, sh := range se.shards {
			sh.eng.RunUntil(until)
		}
		return
	}
	p := &se.pool
	for p.spawned < w-1 {
		pk := newParker(p.epoch)
		p.parkers = append(p.parkers, pk)
		p.wg.Add(1)
		go se.workerLoop(pk, p.epoch+1)
		p.spawned++
	}
	p.epoch++
	e := p.epoch
	p.until.Store(int64(until))
	p.cursor.Store(0)
	p.remain.Store(int32(p.spawned) + 1)
	for _, pk := range p.parkers {
		pk.open(e)
	}
	se.runClaims(until)
	if p.remain.Add(-1) > 0 {
		p.fin.await(e)
	}
}

// deliver drains every outbox into its destination queue in canonical
// order: destination shard, then source shard id, then send order. The
// destination engine's clock sits exactly at the barrier, so scheduling
// preserves each message's requested time (schedule clamps the rare
// too-early delivery to the barrier). Control-bound messages clamp to the
// barrier explicitly, keeping the control clock in lockstep with the
// shards'. Sources with nothing pending are skipped without touching their
// slabs.
func (se *ShardedEngine) deliver(barrier time.Duration) {
	for dst := range se.shards {
		de := se.shards[dst].eng
		for _, src := range se.shards {
			if src.pendingOut == 0 {
				continue
			}
			box := src.outbox[dst]
			for i := range box {
				de.Schedule(box[i].at, box[i].fn)
				box[i].fn = nil
			}
			src.outbox[dst] = box[:0]
		}
	}
	n := len(se.shards)
	for _, src := range se.shards {
		if src.pendingOut == 0 {
			continue
		}
		box := src.outbox[n]
		for i := range box {
			at := box[i].at
			if at < barrier {
				at = barrier
			}
			se.control.Schedule(at, box[i].fn)
			box[i].fn = nil
		}
		src.outbox[n] = box[:0]
		src.pendingOut = 0
	}
}
