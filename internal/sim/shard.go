// Sharded deterministic execution: a ShardedEngine runs N per-shard Engines
// in conservatively synchronized lookahead windows — the classic conservative
// parallel discrete-event recipe — plus one control Engine whose events run
// exclusively at global barriers.
//
// The contract that makes sharded runs byte-identical at any worker count is
// the same one the repo's -parallel fan-out honours: the *decomposition* is
// fixed (one logical shard per model partition, e.g. per cluster) and the
// worker count only decides how many shards execute their window at the same
// wall-clock moment. Because shard state is disjoint during a window and
// cross-shard messages are merged in a canonical order at each barrier, the
// event trace of every shard is a pure function of the seed — scheduling
// cannot leak in.
//
// Synchronization protocol:
//
//   - Time advances in windows of at most `lookahead`, the caller-supplied
//     lower bound on every cross-shard delivery delay (the WAN model's
//     minimum one-way delay). A message sent during window (w0, w1] carries
//     a delivery time ≥ send time + lookahead > w1, so delivering mailboxes
//     at the w1 barrier is always early enough: no shard can ever receive an
//     event in its past.
//   - At each barrier, outboxes drain into destination queues in canonical
//     order — destination, then source shard id, then send order — so the
//     FIFO tie-break among equal timestamps is identical however the window
//     was scheduled across workers.
//   - The control engine never runs concurrently with shard windows. Its
//     next event time caps the window, all shards run exactly up to that
//     barrier, and the control events execute alone while every shard is
//     paused — which is what lets scrape rounds, controller split pushes and
//     chaos injections read and mutate cross-shard state without locks and
//     land on the owning shard's timeline at an exact virtual time.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// xmsg is one cross-shard (or shard→control) delivery: a callback and the
// absolute virtual time it should fire at on the destination timeline.
type xmsg struct {
	at time.Duration
	fn func()
}

// Shard is one deterministic event-loop partition of a ShardedEngine. Its
// embedded Engine must only be driven by the ShardedEngine's barrier loop;
// components owned by the shard (backends, load generators, per-shard
// metrics) schedule on Engine() exactly as they would on a standalone one.
type Shard struct {
	id  int
	se  *ShardedEngine
	eng *Engine
	// outbox collects outgoing messages per destination shard; the last
	// slot addresses the control engine. Only this shard's own execution
	// appends, so no locking is needed.
	outbox [][]xmsg
	sends  uint64 // cross-shard sends issued (self-metric)
}

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's event loop.
func (s *Shard) Engine() *Engine { return s.eng }

// Send schedules fn on shard dst's timeline at absolute virtual time at.
// It must be called from this shard's executing context (an event callback
// on its engine) or while all shards are paused at a barrier. Delivery
// happens at the next barrier; an `at` earlier than the barrier is clamped
// to it, which never triggers when at ≥ send time + lookahead — the
// conservative guarantee cross-shard callers must uphold (WAN transit does,
// by construction of the lookahead).
func (s *Shard) Send(dst int, at time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Send called with nil callback")
	}
	s.outbox[dst] = append(s.outbox[dst], xmsg{at: at, fn: fn})
	s.sends++
}

// SendControl schedules fn on the control engine's timeline. The callback
// runs exclusively — no shard window executes concurrently — at the first
// barrier ≥ at (control deliveries are quantized to barriers so the control
// clock never lags the shards').
func (s *Shard) SendControl(at time.Duration, fn func()) {
	if fn == nil {
		panic("sim: SendControl called with nil callback")
	}
	n := len(s.outbox) - 1
	s.outbox[n] = append(s.outbox[n], xmsg{at: at, fn: fn})
	s.sends++
}

// ShardStats is the sharded engine's self-accounting.
type ShardStats struct {
	// Windows counts barrier-synchronized windows executed.
	Windows uint64
	// CrossSends counts cross-shard and shard→control messages exchanged.
	CrossSends uint64
	// Events counts events fired across all shard engines plus the control
	// engine.
	Events uint64
}

// ShardedEngine coordinates N shard engines plus one control engine under
// the conservative-lookahead protocol described in the package comment for
// this file. It is driven from a single goroutine (RunUntil); only the
// shard windows inside one barrier interval fan out across workers.
type ShardedEngine struct {
	shards    []*Shard
	control   *Engine
	lookahead time.Duration
	workers   int
	now       time.Duration
	running   bool
	windows   uint64
}

// NewSharded returns a sharded engine with n shards, all clocks at zero.
// lookahead must be a positive lower bound on every cross-shard Send delay;
// smaller lookaheads are correct but cost more barriers.
func NewSharded(n int, lookahead time.Duration) *ShardedEngine {
	if n < 1 {
		panic(fmt.Sprintf("sim: NewSharded with %d shards", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewSharded with non-positive lookahead %v", lookahead))
	}
	se := &ShardedEngine{
		shards:    make([]*Shard, n),
		control:   NewEngine(),
		lookahead: lookahead,
		workers:   1,
	}
	for i := range se.shards {
		se.shards[i] = &Shard{
			id:     i,
			se:     se,
			eng:    NewEngine(),
			outbox: make([][]xmsg, n+1),
		}
	}
	return se
}

// NumShards returns the number of shards.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard returns shard i.
func (se *ShardedEngine) Shard(i int) *Shard { return se.shards[i] }

// Control returns the control engine. Events scheduled on it run
// exclusively at global barriers, with every shard advanced to exactly the
// event's timestamp — the place for scrapers, controllers, electors and
// chaos injectors, whose callbacks touch state across shards.
func (se *ShardedEngine) Control() *Engine { return se.control }

// Lookahead returns the configured conservative lookahead.
func (se *ShardedEngine) Lookahead() time.Duration { return se.lookahead }

// SetWorkers caps how many shards execute a window concurrently. The value
// changes wall-clock speed only, never output: 1 runs windows serially on
// the caller's goroutine. Values below 1 or above the shard count clamp.
func (se *ShardedEngine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(se.shards) {
		n = len(se.shards)
	}
	se.workers = n
}

// Now returns the global virtual low-water mark: every shard clock and the
// control clock are exactly here between RunUntil calls.
func (se *ShardedEngine) Now() time.Duration { return se.now }

// Stats returns the engine's self-accounting.
func (se *ShardedEngine) Stats() ShardStats {
	st := ShardStats{Windows: se.windows, Events: se.control.Fired()}
	for _, sh := range se.shards {
		st.CrossSends += sh.sends
		st.Events += sh.eng.Fired()
	}
	return st
}

// pendingLE reports whether any shard or the control engine still holds an
// event at or before t.
func (se *ShardedEngine) pendingLE(t time.Duration) bool {
	if at, ok := se.control.NextAt(); ok && at <= t {
		return true
	}
	for _, sh := range se.shards {
		if at, ok := sh.eng.NextAt(); ok && at <= t {
			return true
		}
	}
	return false
}

// RunUntil advances all shards and the control engine to t, window by
// window. Like Engine.RunUntil, events scheduled exactly at t execute and
// every clock is left at t.
func (se *ShardedEngine) RunUntil(t time.Duration) {
	if se.running {
		panic("sim: ShardedEngine.RunUntil re-entered")
	}
	se.running = true
	defer func() { se.running = false }()
	for se.now < t || se.pendingLE(t) {
		// The next barrier: one lookahead ahead, capped at t, pulled in to
		// the control engine's next event so control events execute at
		// their exact timestamp with all shards paused there.
		next := se.now + se.lookahead
		if next > t {
			next = t
		}
		if at, ok := se.control.NextAt(); ok && at < next {
			next = at
			if next < se.now {
				next = se.now
			}
		}
		se.runWindow(next)
		se.deliver(next)
		se.control.RunUntil(next)
		se.windows++
		se.now = next
	}
}

// runWindow executes every shard's events in (shard clock, until], fanning
// out across the worker cap. Shards share no mutable state during a window
// (that is the decomposition contract), so the work-stealing order cannot
// influence any shard's execution.
func (se *ShardedEngine) runWindow(until time.Duration) {
	w := se.workers
	if w > len(se.shards) {
		w = len(se.shards)
	}
	if w > 1 {
		// Zero-width and control-capped windows often leave work on at most
		// one shard; the fan-out would be pure overhead there.
		busy := 0
		for _, sh := range se.shards {
			if at, ok := sh.eng.NextAt(); ok && at <= until {
				busy++
			}
		}
		if busy < 2 {
			w = 1
		}
	}
	if w <= 1 {
		for _, sh := range se.shards {
			sh.eng.RunUntil(until)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(se.shards) {
					return
				}
				se.shards[j].eng.RunUntil(until)
			}
		}()
	}
	wg.Wait()
}

// deliver drains every outbox into its destination queue in canonical
// order: destination shard, then source shard id, then send order. The
// destination engine's clock sits exactly at the barrier, so scheduling
// preserves each message's requested time (schedule clamps the rare
// too-early delivery to the barrier). Control-bound messages clamp to the
// barrier explicitly, keeping the control clock in lockstep with the
// shards'.
func (se *ShardedEngine) deliver(barrier time.Duration) {
	for dst := range se.shards {
		de := se.shards[dst].eng
		for _, src := range se.shards {
			box := src.outbox[dst]
			for i := range box {
				de.Schedule(box[i].at, box[i].fn)
				box[i].fn = nil
			}
			src.outbox[dst] = box[:0]
		}
	}
	n := len(se.shards)
	for _, src := range se.shards {
		box := src.outbox[n]
		for i := range box {
			at := box[i].at
			if at < barrier {
				at = barrier
			}
			se.control.Schedule(at, box[i].fn)
			box[i].fn = nil
		}
		src.outbox[n] = box[:0]
	}
}
