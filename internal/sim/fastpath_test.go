package sim

import (
	"testing"
	"time"
)

// TestScheduleFiresWithoutTimerHandle covers the handle-free scheduling
// variants the data plane uses: same ordering semantics as At/After, no Timer
// allocation.
func TestScheduleFiresWithoutTimerHandle(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Schedule(time.Second, func() { got = append(got, 1) })
	e.ScheduleAfter(3*time.Second, func() { got = append(got, 3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Schedule order = %v, want [1 2 3]", got)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", e.Now())
	}
}

func TestScheduleAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var fired time.Duration
	e.Schedule(2*time.Second, func() {
		e.ScheduleAfter(3*time.Second, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 5*time.Second {
		t.Fatalf("nested ScheduleAfter fired at %v, want 5s", fired)
	}
}

// TestEventStructsAreRecycled pins the free-list behaviour the zero-alloc
// fast path relies on: a fired event's struct is reused by the next schedule.
func TestEventStructsAreRecycled(t *testing.T) {
	e := NewEngine()
	ev1 := e.schedule(time.Second, func() {})
	e.Run()
	ev2 := e.schedule(2*time.Second, func() {})
	if ev1 != ev2 {
		t.Fatal("fired event struct was not recycled into the next schedule")
	}
	if ev2.seq <= 0 {
		t.Fatalf("recycled event kept seq %d, want a fresh sequence number", ev2.seq)
	}
	e.Run()
}

// TestTimerCancelAfterRecycleIsNoOp pins the seq guard: cancelling a timer
// whose event already fired and was recycled into a new event must not cancel
// the new event.
func TestTimerCancelAfterRecycleIsNoOp(t *testing.T) {
	e := NewEngine()
	tm := e.After(time.Second, func() {})
	e.Run() // fires; the event struct goes to the free list
	fired := false
	e.After(time.Second, func() { fired = true }) // reuses the struct
	tm.Cancel()                                   // stale handle: must be a no-op
	e.Run()
	if !fired {
		t.Fatal("stale Timer.Cancel killed a recycled event")
	}
}

// TestScheduleStepAllocationFree pins the engine's steady state: with a warm
// free list, a schedule+dispatch cycle through the handle-free API allocates
// nothing.
func TestScheduleStepAllocationFree(t *testing.T) {
	e := NewEngine()
	noop := func() {}
	for i := 0; i < 8; i++ { // warm the event free list and heap slice
		e.ScheduleAfter(time.Microsecond, noop)
		e.Step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		e.ScheduleAfter(time.Microsecond, noop)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Step allocates %.1f objects per event, want 0", allocs)
	}
}
