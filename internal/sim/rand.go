package sim

import (
	"math"
	"math/rand/v2"
	"time"
)

// Rand is a deterministic random source with the distribution helpers the
// simulation models need. It wraps math/rand/v2's PCG so that two Rand
// values created with the same seed produce identical streams on every
// platform.
type Rand struct {
	src *rand.Rand
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent deterministic stream from this one. Models use
// Fork to give each component its own stream so that adding a consumer does
// not perturb the draws seen by others.
func (r *Rand) Fork() *Rand {
	return NewRand(r.src.Uint64())
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Bool returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Normal returns a draw from the normal distribution N(mean, stddev²).
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// LogNormal returns a draw from the log-normal distribution with the given
// parameters of the underlying normal (mu is the log-median, sigma the log
// standard deviation).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// Exp returns a draw from the exponential distribution with the given mean.
// It panics if mean <= 0.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("sim: Exp called with non-positive mean")
	}
	return r.src.ExpFloat64() * mean
}

// z99 is the 0.99 quantile of the standard normal distribution; it converts
// a P99/median ratio of a log-normal distribution into its sigma parameter.
const z99 = 2.3263478740408408

// LogNormalFromQuantiles describes a log-normal distribution by its median
// and 99th percentile, the two statistics the paper reports for every
// scenario. Durations are drawn with Sample.
type LogNormalFromQuantiles struct {
	mu    float64
	sigma float64
}

// NewLogNormalFromQuantiles builds the distribution from a median and P99.
// p99 must be >= median; equal values yield a constant distribution.
func NewLogNormalFromQuantiles(median, p99 time.Duration) LogNormalFromQuantiles {
	if median <= 0 {
		median = time.Microsecond
	}
	if p99 < median {
		p99 = median
	}
	m := median.Seconds()
	return LogNormalFromQuantiles{
		mu:    math.Log(m),
		sigma: math.Log(p99.Seconds()/m) / z99,
	}
}

// Sample draws one duration.
func (d LogNormalFromQuantiles) Sample(r *Rand) time.Duration {
	return time.Duration(r.LogNormal(d.mu, d.sigma) * float64(time.Second))
}

// Median returns the distribution's median as a duration.
func (d LogNormalFromQuantiles) Median() time.Duration {
	return time.Duration(math.Exp(d.mu) * float64(time.Second))
}

// P99 returns the distribution's 99th percentile as a duration.
func (d LogNormalFromQuantiles) P99() time.Duration {
	return time.Duration(math.Exp(d.mu+z99*d.sigma) * float64(time.Second))
}
