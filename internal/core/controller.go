package core

import (
	"fmt"
	"math"
	"time"

	"l3/internal/clock"
	"l3/internal/cluster"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/timeseries"
)

// Assigner converts one round of collected backend metrics into weights.
// L3's implementation chains Algorithm 1 and Algorithm 2; the C3 adaptation
// in internal/c3 plugs in here as well, so both run under the identical
// operator shell — matching how the paper evaluates C3 inside L3's
// infrastructure.
type Assigner interface {
	// Assign returns a weight per backend present in m. Weights are
	// positive floats; the controller scales them to TrafficSplit
	// integers.
	Assign(now time.Duration, m map[string]BackendMetrics) map[string]float64
	// Forget drops any per-backend state (backend removed from the
	// split).
	Forget(backend string)
}

// L3Assigner is the paper's algorithm: weight assignment (Algorithm 1)
// followed, optionally, by rate control (Algorithm 2).
type L3Assigner struct {
	weighter *Weighter
	rate     *RateController
}

// NewL3Assigner builds the L3 pipeline. Pass a nil rate config pointer
// semantics via enableRate=false for the rate-control ablation.
func NewL3Assigner(wcfg WeightingConfig, rcfg RateControlConfig, enableRate bool) *L3Assigner {
	a := &L3Assigner{weighter: NewWeighter(wcfg)}
	if enableRate {
		a.rate = NewRateController(rcfg)
	}
	return a
}

// Assign implements Assigner.
func (a *L3Assigner) Assign(now time.Duration, m map[string]BackendMetrics) map[string]float64 {
	weights := a.weighter.Update(now, m)
	if a.rate != nil {
		weights = a.rate.Apply(now, weights, TotalRPS(m))
	}
	return weights
}

// Forget implements Assigner.
func (a *L3Assigner) Forget(backend string) { a.weighter.Forget(backend) }

// Weighter exposes the inner weighter for instrumentation and tests.
func (a *L3Assigner) Weighter() *Weighter { return a.weighter }

// RateController exposes the inner rate controller (nil when disabled).
func (a *L3Assigner) RateController() *RateController { return a.rate }

// Scraper periodically snapshots a metrics registry into the time-series
// database — the stand-in for the Prometheus instance of Figure 5, with the
// same 5 s default scrape interval and therefore the same data-freshness
// limits.
type Scraper struct {
	clk        clock.Clock
	db         *timeseries.DB
	registries []*metrics.Registry
	interval   time.Duration
	timer      clock.Timer
	dropping   bool
	dropped    uint64
	// buf is the recycled snapshot buffer: every scrape pass refills it via
	// SnapshotAppend, so the steady-state scrape allocates nothing.
	buf []metrics.Sample

	// Fault-injection state (internal/chaos drives these): garbage maps a
	// backend name ("" = every series) to a value-corruption mode, skew
	// back-dates alternating scrape passes, slowFactor lets only every n-th
	// scheduled scrape run.
	garbage    map[string]string
	skew       time.Duration
	slowFactor int
	ticks      uint64
}

// NewScraper returns a scraper; call Start to begin scraping.
func NewScraper(engine *sim.Engine, db *timeseries.DB, reg *metrics.Registry, interval time.Duration) *Scraper {
	return NewScraperMulti(engine, db, []*metrics.Registry{reg}, interval)
}

// NewScraperMulti returns a scraper over several registries — the sharded
// world keeps one registry per cluster shard, and a scrape round reads them
// all in shard order, exactly as a Prometheus instance federating per-cluster
// endpoints would. The pass runs on the given engine (the control engine in
// sharded runs, where all shards are paused at the scrape's timestamp).
func NewScraperMulti(engine *sim.Engine, db *timeseries.DB, regs []*metrics.Registry, interval time.Duration) *Scraper {
	return NewScraperClock(clock.Sim(engine), db, regs, interval)
}

// NewScraperClock returns a scraper driven by an arbitrary clock — the wall
// clock under cmd/l3serve, where the scrape pass is the moral equivalent of
// Prometheus pulling /metrics. Like every sim-era component it is
// single-threaded: its methods must run serialized with the clock's
// callbacks.
func NewScraperClock(clk clock.Clock, db *timeseries.DB, regs []*metrics.Registry, interval time.Duration) *Scraper {
	if clk == nil {
		panic("core: NewScraperClock requires a clock")
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &Scraper{clk: clk, db: db, registries: regs, interval: interval}
}

// Start begins periodic scraping (first scrape one interval from now).
func (s *Scraper) Start() {
	s.timer = s.clk.Every(s.interval, s.tick)
}

func (s *Scraper) tick() {
	s.ticks++
	if s.dropping {
		s.dropped++
		return
	}
	if s.slowFactor > 1 && s.ticks%uint64(s.slowFactor) != 0 {
		s.dropped++
		return
	}
	t := s.clk.Now()
	if s.skew != 0 && s.ticks%2 == 1 {
		// Alternating passes carry a back-dated timestamp, as a scraper with
		// a wandering clock would stamp them. With skew beyond the scrape
		// interval this reorders ingestion.
		t -= s.skew
	}
	s.buf = s.buf[:0]
	for _, reg := range s.registries {
		s.buf = reg.SnapshotAppend(s.buf)
	}
	if len(s.garbage) > 0 {
		s.scrapeCorrupted(t)
		return
	}
	for _, sample := range s.buf {
		s.db.AppendSample(sample.Name, sample.Labels, sample.Kind, t, sample.Value)
	}
}

// Stop halts scraping.
func (s *Scraper) Stop() {
	if s.timer != nil {
		s.timer.Cancel()
	}
}

// SetDropping toggles scrape loss: while dropping, scheduled scrapes are
// skipped and the TSDB goes stale, starving the collector of fresh samples —
// the metric-scrape-loss fault of internal/chaos. It implements the
// scrape-gate hook of internal/chaos.
func (s *Scraper) SetDropping(drop bool) { s.dropping = drop }

// Dropped returns how many scheduled scrapes were dropped or skipped.
func (s *Scraper) Dropped() uint64 { return s.dropped }

// SetGarbage toggles garbage injection for one backend's series ("" targets
// every series). While on, matching samples arrive corrupted according to
// mode: "nan" poisons every value, "negative" negates counters, and "mixed"
// (the default) alternates by sample index — the garbage fault of
// internal/chaos.
func (s *Scraper) SetGarbage(backend, mode string, on bool) {
	if !on {
		delete(s.garbage, backend)
		return
	}
	if s.garbage == nil {
		s.garbage = make(map[string]string)
	}
	if mode == "" {
		mode = "mixed"
	}
	s.garbage[backend] = mode
}

// SetSkew sets the clock-skew fault: alternating scrape passes are stamped
// d in the past (0 disables).
func (s *Scraper) SetSkew(d time.Duration) { s.skew = d }

// SetSlowFactor sets the slow-scrape fault: only every n-th scheduled scrape
// executes, stretching the effective interval n-fold (values < 2 disable).
func (s *Scraper) SetSlowFactor(n int) { s.slowFactor = n }

// scrapeCorrupted runs one scrape pass with value corruption applied to the
// series selected by the garbage map. The sample index driving "mixed"
// corruption runs across the whole round (all registries), so a sharded
// scrape corrupts the same sample positions a merged single registry would.
func (s *Scraper) scrapeCorrupted(t time.Duration) {
	for i, sample := range s.buf {
		v := sample.Value
		if mode, ok := s.garbageMode(sample.Labels); ok {
			v = corruptValue(mode, i, v)
		}
		s.db.AppendSample(sample.Name, sample.Labels, sample.Kind, t, v)
	}
}

func (s *Scraper) garbageMode(l metrics.Labels) (string, bool) {
	if m, ok := s.garbage[""]; ok {
		return m, true
	}
	if b, ok := l["backend"]; ok {
		if m, ok := s.garbage[b]; ok {
			return m, true
		}
	}
	return "", false
}

func corruptValue(mode string, i int, v float64) float64 {
	switch mode {
	case "nan":
		return math.NaN()
	case "negative":
		return -v - 1
	default: // mixed
		if i%2 == 0 {
			return math.NaN()
		}
		return -v - 1
	}
}

// Self-metric families the controller exports about its own state, so
// operators (and the benches) can inspect L3's internals — the paper
// exposes the same through Prometheus/OpenTelemetry.
const (
	MetricWeight         = "l3_backend_weight"
	MetricFilteredP99    = "l3_filtered_p99_seconds"
	MetricFilteredRPS    = "l3_filtered_rps"
	MetricRelativeChange = "l3_rps_relative_change"
	MetricUpdatesTotal   = "l3_weight_updates_total"
	MetricLeader         = "l3_is_leader"
)

// ControllerConfig parameterises the operator.
type ControllerConfig struct {
	// Interval is the reconcile period (default 5 s, §4).
	Interval time.Duration
	// WeightScale converts float weights to TrafficSplit integers
	// (default 1000; ratios are what matters).
	WeightScale float64
	// NewAssigner builds one assigner per TrafficSplit. Required.
	NewAssigner func() Assigner
	// SplitFilter restricts the controller to TrafficSplits it returns
	// true for (nil = manage every split). Per-cluster L3 instances
	// sharing one store each manage their own cluster's splits.
	SplitFilter func(name string) bool
	// Elector gates writes when set: only the leader mutates splits.
	Elector *cluster.Elector
	// SelfRegistry receives the controller's own metrics when set.
	SelfRegistry *metrics.Registry
	// WriteGuard vets every weight vector before it reaches the SMI store
	// (nil = write unconditionally, the historical behaviour). Implemented
	// by internal/guard's write gate; the interface lives here so core does
	// not import its guards.
	WriteGuard WriteGuard
}

// WriteGuard gates controller writes: Observe marks a live reconcile round
// (feeding stall watchdogs) on every update, leader or not; Guard validates
// and integer-scales a weight vector, returning ok=false to suppress the
// round's write entirely.
type WriteGuard interface {
	Observe(now time.Duration)
	Guard(now time.Duration, ts *smi.TrafficSplit, weights map[string]float64) (map[string]int64, bool)
}

// Controller is the L3 operator: one control loop tracks TrafficSplit
// lifecycle (via the store watch), another periodically re-weights every
// tracked split from fresh metrics.
type Controller struct {
	clk       clock.Clock
	splits    *smi.Store
	collector *Collector
	cfg       ControllerConfig

	tracked     map[string]*trackedSplit
	cancelWatch func()
	ticker      clock.Timer
	updates     uint64
}

type trackedSplit struct {
	assigner Assigner
	backends map[string]bool
}

// NewController wires the operator together on the simulation engine's
// virtual clock. splits, collector and cfg.NewAssigner are required.
func NewController(engine *sim.Engine, splits *smi.Store, collector *Collector, cfg ControllerConfig) *Controller {
	return NewControllerClock(clock.Sim(engine), splits, collector, cfg)
}

// NewControllerClock wires the operator on an arbitrary clock. The
// controller is single-threaded: its loops run as clock callbacks, and any
// outside caller (tests, a drain path) must serialize with them.
func NewControllerClock(clk clock.Clock, splits *smi.Store, collector *Collector, cfg ControllerConfig) *Controller {
	if clk == nil {
		panic("core: NewControllerClock requires a clock")
	}
	if splits == nil || collector == nil || cfg.NewAssigner == nil {
		panic("core: NewController requires splits, collector and NewAssigner")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.WeightScale <= 0 {
		cfg.WeightScale = 1000
	}
	return &Controller{
		clk:       clk,
		splits:    splits,
		collector: collector,
		cfg:       cfg,
		tracked:   make(map[string]*trackedSplit),
	}
}

// Start begins both control loops: the split watcher (with replay of
// existing splits) and the periodic weight updater.
func (c *Controller) Start() {
	c.cancelWatch = c.splits.Watch(true, c.onSplitEvent)
	c.ticker = c.clk.Every(c.cfg.Interval, c.updateAll)
	if c.cfg.Elector != nil {
		c.cfg.Elector.Run()
	}
}

// Stop halts both loops and resigns leadership gracefully. A stopped
// controller can be started again with Start.
func (c *Controller) Stop() {
	c.halt()
	if c.cfg.Elector != nil {
		c.cfg.Elector.Stop()
	}
}

// Crash halts the controller the way a killed process would: loops stop and
// the elector abandons campaigning WITHOUT releasing the lease, so a standby
// acquires only after the lease TTL runs out — the leader-failover fault of
// internal/chaos. Revive with Start.
func (c *Controller) Crash() {
	c.halt()
	if c.cfg.Elector != nil {
		c.cfg.Elector.Crash()
	}
}

func (c *Controller) halt() {
	if c.cancelWatch != nil {
		c.cancelWatch()
		c.cancelWatch = nil
	}
	if c.ticker != nil {
		c.ticker.Cancel()
		c.ticker = nil
	}
}

// Updates returns how many weight-update rounds have been applied.
func (c *Controller) Updates() uint64 { return c.updates }

// Tracked returns the names of TrafficSplits under management.
func (c *Controller) Tracked() []string {
	out := make([]string, 0, len(c.tracked))
	for name := range c.tracked {
		out = append(out, name)
	}
	return out
}

// Assigner returns the assigner managing a tracked split, for tests and
// instrumentation.
func (c *Controller) Assigner(split string) (Assigner, bool) {
	t, ok := c.tracked[split]
	if !ok {
		return nil, false
	}
	return t.assigner, true
}

func (c *Controller) onSplitEvent(e cluster.Event[*smi.TrafficSplit]) {
	name := e.Object.Name
	if c.cfg.SplitFilter != nil && !c.cfg.SplitFilter(name) {
		return
	}
	switch e.Type {
	case cluster.Added:
		if _, ok := c.tracked[name]; !ok {
			c.tracked[name] = &trackedSplit{
				assigner: c.cfg.NewAssigner(),
				backends: backendSet(e.Object),
			}
		}
	case cluster.Updated:
		t, ok := c.tracked[name]
		if !ok {
			c.tracked[name] = &trackedSplit{
				assigner: c.cfg.NewAssigner(),
				backends: backendSet(e.Object),
			}
			return
		}
		// Forget state of backends that left the split.
		next := backendSet(e.Object)
		for b := range t.backends {
			if !next[b] {
				t.assigner.Forget(b)
			}
		}
		t.backends = next
	case cluster.Deleted:
		delete(c.tracked, name)
	}
}

func backendSet(ts *smi.TrafficSplit) map[string]bool {
	out := make(map[string]bool, len(ts.Backends))
	for _, b := range ts.Backends {
		out[b.Service] = true
	}
	return out
}

func (c *Controller) isLeader() bool {
	if c.cfg.Elector == nil {
		return true
	}
	return c.cfg.Elector.IsLeader()
}

func (c *Controller) updateAll() {
	now := c.clk.Now()
	leader := c.isLeader()
	if reg := c.cfg.SelfRegistry; reg != nil {
		v := 0.0
		if leader {
			v = 1
		}
		reg.Gauge(MetricLeader, nil).Set(v)
	}
	for name, t := range c.tracked {
		c.updateOne(now, name, t, leader)
	}
}

func (c *Controller) updateOne(now time.Duration, name string, t *trackedSplit, leader bool) {
	ts, ok := c.splits.Get(name)
	if !ok {
		return
	}
	m := c.collector.Collect(now, ts.RootService, ts.BackendNames())
	weights := t.assigner.Assign(now, m)

	if reg := c.cfg.SelfRegistry; reg != nil {
		c.exportSelfMetrics(reg, name, t, weights)
	}
	if g := c.cfg.WriteGuard; g != nil {
		g.Observe(now)
	}
	if !leader {
		return
	}
	if g := c.cfg.WriteGuard; g != nil {
		ints, ok := g.Guard(now, ts, weights)
		if !ok {
			return // gate suppressed or rejected this round's write
		}
		if err := ts.ApplyWeights(ints); err != nil {
			return // backend left between Get and Guard; watch will catch up
		}
	} else {
		for b, w := range weights {
			if v, ok := scaleWeight(w, c.cfg.WeightScale); ok {
				// Unknown-backend errors are ignored: the backend left the
				// split between Get and now, and the watch will untrack it.
				_ = ts.SetWeight(b, v)
			}
		}
	}
	if err := c.splits.Update(ts); err != nil {
		// The split vanished between Get and Update; the watch event will
		// untrack it. Nothing else to do in an operator but move on.
		return
	}
	c.updates++
	if reg := c.cfg.SelfRegistry; reg != nil {
		reg.Counter(MetricUpdatesTotal, metrics.Labels{"split": name}).Inc()
	}
}

func (c *Controller) exportSelfMetrics(reg *metrics.Registry, split string, t *trackedSplit, weights map[string]float64) {
	for b, w := range weights {
		reg.Gauge(MetricWeight, metrics.Labels{"split": split, "backend": b}).Set(w)
	}
	if l3, ok := t.assigner.(*L3Assigner); ok {
		for b := range weights {
			if view, ok := l3.Weighter().View(b); ok {
				reg.Gauge(MetricFilteredP99, metrics.Labels{"split": split, "backend": b}).Set(view.Latency)
				reg.Gauge(MetricFilteredRPS, metrics.Labels{"split": split, "backend": b}).Set(view.RPS)
			}
		}
		if rc := l3.RateController(); rc != nil {
			reg.Gauge(MetricRelativeChange, metrics.Labels{"split": split}).Set(rc.LastRelativeChange())
		}
	}
}

// scaleWeight converts a float weight to a TrafficSplit integer, keeping
// ratios and guaranteeing at least 1 so backends stay measurable. ok is
// false for NaN/Inf weights: int64(NaN) is platform-defined, so a poisoned
// weight must deterministically hold the previous value instead of being
// written.
func scaleWeight(w, scale float64) (int64, bool) {
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return 0, false
	}
	v := math.Round(w * scale)
	if v < 1 {
		v = 1
	}
	if v > math.MaxInt64/2 {
		v = math.MaxInt64 / 2
	}
	return int64(v), true
}

// String identifies the controller in logs.
func (c *Controller) String() string {
	return fmt.Sprintf("l3-controller{splits=%d interval=%v}", len(c.tracked), c.cfg.Interval)
}
