// Package core implements L3: the latency-aware multi-cluster load
// balancer of the paper. It contains the three components of §3 — the
// metrics collector, the weight assigner (Algorithm 1) and the rate
// controller (Algorithm 2) — plus the Kubernetes-operator shell of §4: a
// control loop that watches TrafficSplits, periodically folds fresh
// data-plane metrics into per-backend EWMAs, recomputes weights and writes
// them back through the SMI store, gated on lease-based leader election.
package core

import (
	"time"

	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/timeseries"
)

// BackendMetrics is one backend's aggregated data-plane view over the
// collector's query window — the exact inputs Algorithm 1 consumes.
type BackendMetrics struct {
	// RPS is the measured requests/second (all classifications).
	RPS float64
	// SuccessRate is successful/total responses in [0, 1].
	SuccessRate float64
	// P99 is the configured percentile of successful-response latency in
	// seconds; valid only when P99Valid (a backend can have traffic but no
	// successful responses in the window).
	P99      float64
	P99Valid bool
	// MeanLatency is the mean successful-response latency in seconds
	// (used by the C3 adaptation, which scores on means); valid with
	// MeanValid.
	MeanLatency float64
	MeanValid   bool
	// FailureMeanLatency is the mean latency of FAILED responses in
	// seconds — the client-perceived round-trip of a failure, the
	// continuous feedback the paper's future-work section wants to derive
	// the penalty factor P from. Valid with FailureMeanValid.
	FailureMeanLatency float64
	FailureMeanValid   bool
	// Inflight is the average number of outstanding requests.
	Inflight float64
	// HasTraffic is false when the window held no rate-computable samples
	// (≥10 s without traffic, per §4); the weighter then relaxes its
	// filters toward their defaults instead of observing.
	HasTraffic bool
	// LastSample is the scrape timestamp of the backend's newest stored
	// response sample (0 = none ever) — the freshness clock internal/guard
	// classifies fresh/stale/blind from.
	LastSample time.Duration
	// Starved distinguishes a data gap from genuine idleness: true when the
	// backend has stored samples but the window could not compute a rate
	// (fewer than two in-window points — dropped scrapes, rejected garbage,
	// skew-reordered stamps). A truly idle backend has fresh samples and a
	// zero rate instead.
	Starved bool
	// ResetSeen is true when the hygiene layer spliced a counter reset for
	// this backend inside the query window; the increments lost to the
	// restart make the window's rates untrustworthy for one round.
	ResetSeen bool
}

// Collector turns the time-series database into BackendMetrics snapshots.
// It issues the same four queries the paper's implementation sends to
// Prometheus every 5 s: RPS, success rate, latency percentile and in-flight
// requests, each over a trailing window wide enough to hold two scrapes.
type Collector struct {
	// DB is the scraped metrics store.
	DB *timeseries.DB
	// Window is the trailing query window (default 10 s — twice the 5 s
	// scrape interval, as §4 explains).
	Window time.Duration
	// Percentile selects the latency quantile for P99 (default 0.99; §3.1
	// notes L3 can be configured for e.g. the 98th or 99.9th).
	Percentile float64
	// Match restricts every query to series carrying these labels. A
	// per-cluster L3 instance sets Match to its own source cluster
	// ({"src": "cluster-2"}) so it only sees latency as measured from its
	// cluster's proxies.
	Match metrics.Labels
	// Resets reports counter-reset splices when a hygiene layer is
	// installed (nil = raw ingestion, no reset awareness).
	Resets ResetSource
}

// ResetSource reports the most recent counter-reset splice among series
// matching a label set. Implemented by internal/guard's hygiene layer; the
// interface lives here so core does not import its guards.
type ResetSource interface {
	LastReset(match metrics.Labels) (time.Duration, bool)
}

// NewCollector returns a collector with the paper's defaults.
func NewCollector(db *timeseries.DB) *Collector {
	return &Collector{DB: db, Window: 10 * time.Second, Percentile: 0.99}
}

func (c *Collector) window() time.Duration {
	if c.Window <= 0 {
		return 10 * time.Second
	}
	return c.Window
}

func (c *Collector) percentile() float64 {
	if c.Percentile <= 0 || c.Percentile >= 1 {
		return 0.99
	}
	return c.Percentile
}

// Collect gathers metrics for every named backend at virtual time at.
// service scopes the queries when non-empty (multiple services can share a
// backend name otherwise).
func (c *Collector) Collect(at time.Duration, service string, backends []string) map[string]BackendMetrics {
	out := make(map[string]BackendMetrics, len(backends))
	w := c.window()
	for _, b := range backends {
		base := metrics.Labels{"backend": b}
		if service != "" {
			base["service"] = service
		}
		for k, v := range c.Match {
			base[k] = v
		}
		var m BackendMetrics

		if last, ok := c.DB.NewestSample(mesh.MetricResponseTotal, base); ok {
			m.LastSample = last
		}
		if c.Resets != nil {
			if rt, ok := c.Resets.LastReset(base); ok && rt > at-w {
				m.ResetSeen = true
			}
		}

		totalRate, ok := c.DB.Rate(mesh.MetricResponseTotal, base, at, w)
		if !ok || totalRate <= 0 {
			// Distinguish a data gap (samples exist, but fewer than two in
			// the window) from a backend that is genuinely idle or unknown.
			m.Starved = !ok && m.LastSample > 0
			out[b] = m // HasTraffic stays false
			continue
		}
		m.HasTraffic = true
		m.RPS = totalRate

		succRate, ok := c.DB.Rate(mesh.MetricResponseTotal,
			base.With("classification", mesh.ClassSuccess), at, w)
		if !ok {
			succRate = 0
		}
		m.SuccessRate = succRate / totalRate
		if m.SuccessRate > 1 {
			m.SuccessRate = 1
		}

		succ := base.With("classification", mesh.ClassSuccess)
		if q, ok := c.DB.HistogramQuantile(c.percentile(), mesh.MetricResponseLatency, succ, at, w); ok {
			m.P99 = q
			m.P99Valid = true
		}
		sumRate, okSum := c.DB.Rate(mesh.MetricResponseLatency+"_sum", succ, at, w)
		cntRate, okCnt := c.DB.Rate(mesh.MetricResponseLatency+"_count", succ, at, w)
		if okSum && okCnt && cntRate > 0 {
			m.MeanLatency = sumRate / cntRate
			m.MeanValid = true
		}

		fail := base.With("classification", mesh.ClassFailure)
		fSumRate, okFSum := c.DB.Rate(mesh.MetricResponseLatency+"_sum", fail, at, w)
		fCntRate, okFCnt := c.DB.Rate(mesh.MetricResponseLatency+"_count", fail, at, w)
		if okFSum && okFCnt && fCntRate > 0 {
			m.FailureMeanLatency = fSumRate / fCntRate
			m.FailureMeanValid = true
		}

		if v, ok := c.DB.GaugeAvg(mesh.MetricInflight, base, at, w); ok {
			m.Inflight = v
		}
		out[b] = m
	}
	return out
}

// TotalRPS sums the measured RPS of backends with traffic — the
// "RPS_last" sample Algorithm 2 compares against its EWMA.
func TotalRPS(m map[string]BackendMetrics) float64 {
	var sum float64
	for _, bm := range m {
		if bm.HasTraffic {
			sum += bm.RPS
		}
	}
	return sum
}
