package core

import (
	"testing"
	"time"

	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/timeseries"
)

func TestScraperScrapesAtInterval(t *testing.T) {
	engine := sim.NewEngine()
	reg := metrics.NewRegistry()
	counter := reg.Counter("reqs", nil)
	db := timeseries.NewDB(time.Minute)

	s := NewScraper(engine, db, reg, 5*time.Second)
	s.Start()
	engine.Every(time.Second, func() { counter.Add(10) })

	engine.RunUntil(30 * time.Second)
	rate, ok := db.Rate("reqs", nil, 30*time.Second, 10*time.Second)
	if !ok {
		t.Fatal("no rate after six scrapes")
	}
	if rate < 9 || rate > 11 {
		t.Fatalf("rate = %v, want ~10/s", rate)
	}
}

func TestScraperStop(t *testing.T) {
	engine := sim.NewEngine()
	reg := metrics.NewRegistry()
	reg.Counter("x", nil).Inc()
	db := timeseries.NewDB(time.Minute)
	s := NewScraper(engine, db, reg, 5*time.Second)
	s.Start()
	engine.RunUntil(12 * time.Second)
	s.Stop()
	engine.RunUntil(time.Minute)
	// After stop, no samples past 12s: Latest at 60s equals Latest at 12s
	// and a rate query over recent window fails.
	if _, ok := db.Rate("x", nil, time.Minute, 10*time.Second); ok {
		t.Fatal("samples kept arriving after Stop")
	}
}

func TestScraperDefaultInterval(t *testing.T) {
	engine := sim.NewEngine()
	reg := metrics.NewRegistry()
	reg.Gauge("g", nil).Set(1)
	db := timeseries.NewDB(time.Minute)
	NewScraper(engine, db, reg, 0).Start() // default 5s
	engine.RunUntil(6 * time.Second)
	if _, ok := db.Latest("g", nil, 6*time.Second); !ok {
		t.Fatal("default-interval scraper produced no samples by 6s")
	}
}

func TestL3AssignerPipelinesWeightingAndRateControl(t *testing.T) {
	a := NewL3Assigner(WeightingConfig{}, RateControlConfig{}, true)
	if a.RateController() == nil {
		t.Fatal("rate controller missing when enabled")
	}
	m := map[string]BackendMetrics{
		"fast": observed(0.050, 1, 100, 0),
		"slow": observed(0.500, 1, 100, 0),
	}
	var w map[string]float64
	for i := 0; i < 30; i++ {
		w = a.Assign(time.Duration(i)*5*time.Second, m)
	}
	if w["fast"] <= w["slow"] {
		t.Fatalf("weights: %v", w)
	}
	// Steady total RPS: rate controller must not disturb the ratios much.
	ratio := w["fast"] / w["slow"]
	if ratio < 5 || ratio > 15 {
		t.Fatalf("ratio = %v, want near the 10x latency gap", ratio)
	}
	// Surge: weights compress toward the mean.
	surged := map[string]BackendMetrics{
		"fast": observed(0.050, 1, 400, 0),
		"slow": observed(0.500, 1, 400, 0),
	}
	w2 := a.Assign(200*time.Second, surged)
	if r2 := w2["fast"] / w2["slow"]; r2 >= ratio {
		t.Fatalf("surge did not compress weights: before %v after %v", ratio, r2)
	}
}

func TestL3AssignerWithoutRateControl(t *testing.T) {
	a := NewL3Assigner(WeightingConfig{}, RateControlConfig{}, false)
	if a.RateController() != nil {
		t.Fatal("rate controller present when disabled")
	}
	m := map[string]BackendMetrics{"b": observed(0.1, 1, 100, 0)}
	if w := a.Assign(0, m); w["b"] <= 0 {
		t.Fatalf("weight = %v", w["b"])
	}
	a.Forget("b")
	if _, ok := a.Weighter().View("b"); ok {
		t.Fatal("Forget did not clear state")
	}
}
