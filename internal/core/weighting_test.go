package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"l3/internal/ewma"
)

// observed builds BackendMetrics with traffic.
func observed(p99, success, rps, inflight float64) BackendMetrics {
	return BackendMetrics{
		RPS: rps, SuccessRate: success,
		P99: p99, P99Valid: true,
		MeanLatency: p99 / 3, MeanValid: true,
		Inflight: inflight, HasTraffic: true,
	}
}

func TestWeighterDefaultsApplied(t *testing.T) {
	w := NewWeighter(WeightingConfig{})
	cfg := w.Config()
	if cfg.Penalty != 600*time.Millisecond {
		t.Fatalf("Penalty default = %v", cfg.Penalty)
	}
	if cfg.FilterKind != ewma.KindEWMA {
		t.Fatalf("FilterKind default = %v", cfg.FilterKind)
	}
	if cfg.InflightExponent != 2 || cfg.MinWeight != 0.001 {
		t.Fatalf("exponent/min = %v/%v", cfg.InflightExponent, cfg.MinWeight)
	}
	if cfg.LatencyHalfLife != 5*time.Second || cfg.SuccessHalfLife != 10*time.Second {
		t.Fatalf("half-lives = %v/%v", cfg.LatencyHalfLife, cfg.SuccessHalfLife)
	}
	if cfg.DefaultLatency != 5*time.Second || cfg.DefaultSuccess != 1 {
		t.Fatalf("defaults = %v/%v", cfg.DefaultLatency, cfg.DefaultSuccess)
	}
}

func TestFasterBackendGetsHigherWeight(t *testing.T) {
	w := NewWeighter(WeightingConfig{})
	m := map[string]BackendMetrics{
		"fast": observed(0.050, 1, 100, 1),
		"slow": observed(0.500, 1, 100, 1),
	}
	var weights map[string]float64
	for i := 0; i < 20; i++ { // converge the filters
		weights = w.Update(time.Duration(i)*5*time.Second, m)
	}
	if weights["fast"] <= weights["slow"] {
		t.Fatalf("fast=%v slow=%v, want fast > slow", weights["fast"], weights["slow"])
	}
	// With identical success/inflight the ratio approaches the latency
	// ratio 10x.
	ratio := weights["fast"] / weights["slow"]
	if ratio < 8 || ratio > 12 {
		t.Fatalf("weight ratio = %v, want ~10", ratio)
	}
}

func TestEquation4AnchorValue(t *testing.T) {
	// Lest = 100ms, Ri = 0: wb = 1/0.1 = 10.
	w := NewWeighter(WeightingConfig{})
	m := map[string]BackendMetrics{"b": observed(0.100, 1, 100, 0)}
	var weights map[string]float64
	for i := 0; i < 30; i++ {
		weights = w.Update(time.Duration(i)*5*time.Second, m)
	}
	if math.Abs(weights["b"]-10) > 0.5 {
		t.Fatalf("weight = %v, want ~10 for Lest=100ms Ri=0", weights["b"])
	}
}

func TestFailurePenaltyLowersWeight(t *testing.T) {
	w := NewWeighter(WeightingConfig{})
	m := map[string]BackendMetrics{
		"healthy": observed(0.100, 1.0, 100, 0),
		"flaky":   observed(0.100, 0.5, 100, 0),
	}
	var weights map[string]float64
	for i := 0; i < 30; i++ {
		weights = w.Update(time.Duration(i)*5*time.Second, m)
	}
	// Equation 3: flaky's Lest = 0.1 + 0.6·(1/0.5 − 1) = 0.7 vs 0.1.
	ratio := weights["healthy"] / weights["flaky"]
	if ratio < 6 || ratio > 8 {
		t.Fatalf("healthy/flaky ratio = %v, want ~7", ratio)
	}
}

func TestZeroSuccessRateUsesLsBranch(t *testing.T) {
	// Rs = 0 must not divide by zero: Lest = Ls (Algorithm 1 line 11).
	// Exercised directly: with λ-seeding the success EWMA only asymptotes
	// toward zero, so the branch is a guard rather than a steady state.
	w := NewWeighter(WeightingConfig{})
	f := &backendFilters{
		latency:  ewma.New(5*time.Second, 0.2),
		success:  ewma.New(10*time.Second, 0), // Rs = 0 before any sample
		rps:      ewma.New(10*time.Second, 0),
		inflight: ewma.New(5*time.Second, 0),
		failRTT:  ewma.New(10*time.Second, 0.6),
	}
	if got := w.weightOf(f); math.Abs(got-5) > 1e-9 { // 1/0.2
		t.Fatalf("weight = %v, want 5 (Lest = Ls)", got)
	}
	// End to end, a backend whose every request fails converges to the
	// minimum weight: Rs decays toward 0 and Equation 3 explodes.
	m := map[string]BackendMetrics{"dead": {
		RPS: 100, SuccessRate: 0, P99: 0.2, P99Valid: true, HasTraffic: true,
	}}
	var weights map[string]float64
	for i := 0; i < 200; i++ {
		weights = w.Update(time.Duration(i)*5*time.Second, m)
	}
	if math.IsInf(weights["dead"], 0) || math.IsNaN(weights["dead"]) {
		t.Fatalf("weight = %v", weights["dead"])
	}
	if weights["dead"] != w.Config().MinWeight {
		t.Fatalf("weight = %v, want floored to MinWeight %v", weights["dead"], w.Config().MinWeight)
	}
}

func TestPenaltyFactorScalesImpact(t *testing.T) {
	mkWeights := func(p time.Duration) float64 {
		w := NewWeighter(WeightingConfig{Penalty: p})
		m := map[string]BackendMetrics{"b": observed(0.100, 0.9, 100, 0)}
		var weights map[string]float64
		for i := 0; i < 30; i++ {
			weights = w.Update(time.Duration(i)*5*time.Second, m)
		}
		return weights["b"]
	}
	small, large := mkWeights(100*time.Millisecond), mkWeights(1500*time.Millisecond)
	if small <= large {
		t.Fatalf("P=100ms weight %v should exceed P=1.5s weight %v", small, large)
	}
}

func TestInflightSquaredPenalty(t *testing.T) {
	w := NewWeighter(WeightingConfig{})
	m := map[string]BackendMetrics{
		"idle": observed(0.100, 1, 100, 0),   // Ri = 0
		"busy": observed(0.100, 1, 100, 100), // Ri = 1
	}
	var weights map[string]float64
	for i := 0; i < 30; i++ {
		weights = w.Update(time.Duration(i)*5*time.Second, m)
	}
	// (Ri+1)² = 4 for busy vs 1 for idle.
	ratio := weights["idle"] / weights["busy"]
	if math.Abs(ratio-4) > 0.4 {
		t.Fatalf("idle/busy ratio = %v, want ~4", ratio)
	}
}

func TestInflightExponentAblation(t *testing.T) {
	run := func(exp float64) float64 {
		w := NewWeighter(WeightingConfig{InflightExponent: exp})
		m := map[string]BackendMetrics{
			"idle": observed(0.100, 1, 100, 0),
			"busy": observed(0.100, 1, 100, 100),
		}
		var weights map[string]float64
		for i := 0; i < 30; i++ {
			weights = w.Update(time.Duration(i)*5*time.Second, m)
		}
		return weights["idle"] / weights["busy"]
	}
	if r := run(1); math.Abs(r-2) > 0.2 {
		t.Fatalf("exponent 1 ratio = %v, want ~2", r)
	}
	if r := run(3); math.Abs(r-8) > 0.8 {
		t.Fatalf("exponent 3 ratio = %v, want ~8", r)
	}
}

func TestZeroRPSMeansZeroNormalizedInflight(t *testing.T) {
	// Algorithm 1 line 6-9: Rrps = 0 -> Ri = 0 (no division).
	w := NewWeighter(WeightingConfig{})
	m := map[string]BackendMetrics{"b": {
		RPS: 0, SuccessRate: 1, P99: 0.1, P99Valid: true, Inflight: 50, HasTraffic: true,
	}}
	var weights map[string]float64
	for i := 0; i < 30; i++ {
		weights = w.Update(time.Duration(i)*5*time.Second, m)
	}
	if math.Abs(weights["b"]-10) > 1 {
		t.Fatalf("weight = %v, want ~10 (inflight ignored at zero RPS)", weights["b"])
	}
}

func TestMinWeightFloor(t *testing.T) {
	// An explicit floor clamps: Lest = 5s -> raw weight 0.2 -> floored to 1.
	w := NewWeighter(WeightingConfig{MinWeight: 1})
	m := map[string]BackendMetrics{"slow": observed(5.0, 1, 100, 0)}
	var weights map[string]float64
	for i := 0; i < 30; i++ {
		weights = w.Update(time.Duration(i)*5*time.Second, m)
	}
	if weights["slow"] != 1 {
		t.Fatalf("weight = %v, want floored to 1", weights["slow"])
	}
	// The default floor is only a numerical guard: the same slow backend
	// keeps its honest Equation 4 weight (the integer TrafficSplit floor
	// downstream is what keeps it measurable).
	w = NewWeighter(WeightingConfig{})
	for i := 0; i < 30; i++ {
		weights = w.Update(time.Duration(i)*5*time.Second, m)
	}
	if math.Abs(weights["slow"]-0.2) > 0.02 {
		t.Fatalf("weight = %v, want ~0.2 unfloored", weights["slow"])
	}
}

func TestNoTrafficRelaxesTowardDefaults(t *testing.T) {
	w := NewWeighter(WeightingConfig{})
	// Teach it a fast backend first.
	for i := 0; i < 20; i++ {
		w.Update(time.Duration(i)*5*time.Second, map[string]BackendMetrics{
			"b": observed(0.010, 1, 100, 0),
		})
	}
	view, _ := w.View("b")
	if view.Latency > 0.02 {
		t.Fatalf("pre-relax latency = %v", view.Latency)
	}
	// Then starve it: filters must drift toward the 5 s default latency.
	for i := 20; i < 200; i++ {
		w.Update(time.Duration(i)*5*time.Second, map[string]BackendMetrics{
			"b": {HasTraffic: false},
		})
	}
	view, _ = w.View("b")
	if view.Latency < 4.5 {
		t.Fatalf("post-relax latency = %v, want near the 5s default", view.Latency)
	}
	if view.RPS > 1 {
		t.Fatalf("post-relax RPS = %v, want near 0", view.RPS)
	}
}

func TestPeakEWMAKindReactsToSpikes(t *testing.T) {
	now := time.Duration(0)
	step := func(w *Weighter, p99 float64) float64 {
		weights := w.Update(now, map[string]BackendMetrics{"b": observed(p99, 1, 100, 0)})
		return weights["b"]
	}
	peak := NewWeighter(WeightingConfig{FilterKind: ewma.KindPeak})
	plain := NewWeighter(WeightingConfig{FilterKind: ewma.KindEWMA})
	for i := 0; i < 20; i++ {
		now = time.Duration(i) * 5 * time.Second
		step(peak, 0.05)
		step(plain, 0.05)
	}
	now += 5 * time.Second
	pw := step(peak, 0.8) // spike
	ew := step(plain, 0.8)
	if pw >= ew {
		t.Fatalf("peak weight %v should fall below ewma weight %v on a spike", pw, ew)
	}
}

func TestViewAndForget(t *testing.T) {
	w := NewWeighter(WeightingConfig{})
	if _, ok := w.View("never"); ok {
		t.Fatal("View of unknown backend returned ok")
	}
	w.Update(0, map[string]BackendMetrics{"b": observed(0.1, 1, 50, 2)})
	view, ok := w.View("b")
	// One sample in: the RPS filter blends its λ seed (0) with the sample,
	// (0+50)/2 = 25.
	if !ok || view.RPS != 25 || view.Weight <= 0 {
		t.Fatalf("view = %+v, %v", view, ok)
	}
	w.Forget("b")
	if _, ok := w.View("b"); ok {
		t.Fatal("View after Forget returned ok")
	}
}

func TestWeightsAlwaysPositiveFiniteProperty(t *testing.T) {
	f := func(p99m, succ255, rps16, inflight16 uint16) bool {
		w := NewWeighter(WeightingConfig{})
		m := map[string]BackendMetrics{"b": {
			RPS:         float64(rps16 % 2000),
			SuccessRate: float64(succ255%256) / 255,
			P99:         float64(p99m%10000) / 1000,
			P99Valid:    true,
			Inflight:    float64(inflight16 % 500),
			HasTraffic:  true,
		}}
		for i := 0; i < 5; i++ {
			weights := w.Update(time.Duration(i)*5*time.Second, m)
			v := weights["b"]
			if v < w.Config().MinWeight || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerLatencyNeverLowersWeightProperty(t *testing.T) {
	// Monotonicity: with all else equal, a strictly lower P99 must never
	// produce a lower weight.
	f := func(aMs, bMs uint16) bool {
		la := float64(aMs%5000+1) / 1000
		lb := float64(bMs%5000+1) / 1000
		wa := convergedWeight(la)
		wb := convergedWeight(lb)
		if la < lb {
			return wa >= wb
		}
		if lb < la {
			return wb >= wa
		}
		return wa == wb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func convergedWeight(p99 float64) float64 {
	w := NewWeighter(WeightingConfig{})
	var weights map[string]float64
	for i := 0; i < 20; i++ {
		weights = w.Update(time.Duration(i)*5*time.Second, map[string]BackendMetrics{
			"b": observed(p99, 1, 100, 0),
		})
	}
	return weights["b"]
}

func TestDynamicPenaltyTracksFailureRTT(t *testing.T) {
	w := NewWeighter(WeightingConfig{DynamicPenalty: true, Penalty: 600 * time.Millisecond})
	// Failures cost only 50ms here; the dynamic P must converge to that
	// instead of the 600ms static default.
	m := map[string]BackendMetrics{"b": {
		RPS: 100, SuccessRate: 0.5, P99: 0.1, P99Valid: true,
		FailureMeanLatency: 0.05, FailureMeanValid: true, HasTraffic: true,
	}}
	var weights map[string]float64
	for i := 0; i < 40; i++ {
		weights = w.Update(time.Duration(i)*5*time.Second, m)
	}
	// Lest = 0.1 + 0.05*(1/0.5-1) = 0.15 -> w ~ 6.67.
	if math.Abs(weights["b"]-1/0.15) > 0.5 {
		t.Fatalf("dynamic-penalty weight = %v, want ~6.67", weights["b"])
	}
}

func TestDynamicPenaltyDefaultsToStaticBeforeFailures(t *testing.T) {
	w := NewWeighter(WeightingConfig{DynamicPenalty: true, Penalty: 600 * time.Millisecond})
	// No failure latency observed: the filter's default (the static P)
	// applies, so behaviour matches the static configuration.
	m := map[string]BackendMetrics{"b": observed(0.1, 0.5, 100, 0)}
	var weights map[string]float64
	for i := 0; i < 40; i++ {
		weights = w.Update(time.Duration(i)*5*time.Second, m)
	}
	// Lest = 0.1 + 0.6*(1/0.5-1) = 0.7 -> w ~ 1.43.
	if math.Abs(weights["b"]-1/0.7) > 0.1 {
		t.Fatalf("pre-feedback weight = %v, want ~1.43", weights["b"])
	}
}
