package core

import (
	"errors"
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/ewma"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/timeseries"
	"l3/internal/wan"
)

func TestPolicyValidate(t *testing.T) {
	tests := []struct {
		name   string
		policy OptimizationPolicy
		want   error
	}{
		{"valid defaults", OptimizationPolicy{Name: "p"}, nil},
		{"valid full", OptimizationPolicy{Name: "p", Percentile: 0.98, Penalty: time.Second, FilterKind: ewma.KindPeak}, nil},
		{"no name", OptimizationPolicy{}, ErrPolicyNoName},
		{"bad percentile", OptimizationPolicy{Name: "p", Percentile: 1.5}, ErrPolicyBadPercentile},
		{"negative penalty", OptimizationPolicy{Name: "p", Penalty: -time.Second}, ErrPolicyBadPenalty},
		{"unknown filter", OptimizationPolicy{Name: "p", FilterKind: ewma.Kind(9)}, ErrPolicyUnknownFilter},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.policy.Validate()
			if tt.want == nil && err != nil {
				t.Fatalf("err = %v", err)
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestPolicyTarget(t *testing.T) {
	p := OptimizationPolicy{Name: "books-policy"}
	if p.Target() != "books-policy" {
		t.Fatalf("default target = %q", p.Target())
	}
	p.TargetSplit = "books"
	if p.Target() != "books" {
		t.Fatalf("explicit target = %q", p.Target())
	}
}

func TestPolicyStoreValueSemanticsAndValidation(t *testing.T) {
	s := NewPolicyStore()
	if err := s.Create(&OptimizationPolicy{}); !errors.Is(err, ErrPolicyNoName) {
		t.Fatalf("invalid create err = %v", err)
	}
	p := &OptimizationPolicy{Name: "p", Percentile: 0.98}
	if err := s.Create(p); err != nil {
		t.Fatal(err)
	}
	p.Percentile = 0.5 // mutate caller copy
	got, ok := s.Get("p")
	if !ok || got.Percentile != 0.98 {
		t.Fatalf("store aliased caller memory: %+v", got)
	}
	got.Percentile = 0.1
	again, _ := s.Get("p")
	if again.Percentile != 0.98 {
		t.Fatal("Get handed out aliased memory")
	}
	if len(s.List()) != 1 {
		t.Fatal("List length")
	}
	if err := s.Update(&OptimizationPolicy{Name: "p", Percentile: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("p"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("p"); ok {
		t.Fatal("deleted policy still present")
	}
}

// policyRig wires a 2-backend mesh with a policy-driven controller.
type policyRig struct {
	engine   *sim.Engine
	m        *mesh.Mesh
	policies *PolicyStore
	ctrl     *PolicyController
}

func newPolicyRig(t *testing.T) *policyRig {
	t.Helper()
	engine := sim.NewEngine()
	rng := sim.NewRand(42)
	m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	_, _ = m.AddService("api")
	mk := func(d time.Duration) backend.Profile {
		return func(time.Duration, *sim.Rand) (time.Duration, bool) { return d, true }
	}
	_, _ = m.AddBackend("api", "api-fast", "cluster-1", backend.Config{}, mk(20*time.Millisecond))
	_, _ = m.AddBackend("api", "api-slow", "cluster-2", backend.Config{}, mk(400*time.Millisecond))
	_ = m.Splits().Create(&smi.TrafficSplit{
		Name: "api", RootService: "api",
		Backends: []smi.Backend{{Service: "api-fast", Weight: 500}, {Service: "api-slow", Weight: 500}},
	})
	_ = m.SetPicker("api", balancer.NewWeightedSplit(m.Splits(), rng.Fork(), nil))

	db := timeseries.NewDB(time.Minute)
	NewScraper(engine, db, m.Registry(), 5*time.Second).Start()
	policies := NewPolicyStore()
	ctrl := NewPolicyController(engine, m.Splits(), db, policies, PolicyControllerConfig{})
	ctrl.Start()

	engine.Every(20*time.Millisecond, func() {
		_ = m.Call("cluster-1", "api", func(mesh.Result) {})
	})
	return &policyRig{engine: engine, m: m, policies: policies, ctrl: ctrl}
}

func (r *policyRig) weights(t *testing.T) (fast, slow int64) {
	t.Helper()
	ts, ok := r.m.Splits().Get("api")
	if !ok {
		t.Fatal("split vanished")
	}
	for _, b := range ts.Backends {
		switch b.Service {
		case "api-fast":
			fast = b.Weight
		case "api-slow":
			slow = b.Weight
		}
	}
	return fast, slow
}

func TestPolicyControllerManagesOnlyDeclaredSplits(t *testing.T) {
	r := newPolicyRig(t)
	// No policy yet: the split must stay untouched.
	r.engine.RunUntil(time.Minute)
	fast, slow := r.weights(t)
	if fast != 500 || slow != 500 {
		t.Fatalf("unmanaged split mutated: %d/%d", fast, slow)
	}
	// Declare a policy; weights start moving.
	if err := r.policies.Create(&OptimizationPolicy{Name: "api"}); err != nil {
		t.Fatal(err)
	}
	r.engine.RunUntil(3 * time.Minute)
	fast, slow = r.weights(t)
	if fast <= slow {
		t.Fatalf("policy-managed weights fast=%d slow=%d", fast, slow)
	}
	if got := r.ctrl.Managed(); len(got) != 1 || got[0] != "api" {
		t.Fatalf("Managed = %v", got)
	}
	if r.ctrl.Updates() == 0 {
		t.Fatal("no update rounds counted")
	}
}

func TestPolicyControllerDeleteStopsManagement(t *testing.T) {
	r := newPolicyRig(t)
	_ = r.policies.Create(&OptimizationPolicy{Name: "api"})
	r.engine.RunUntil(2 * time.Minute)
	if err := r.policies.Delete("api"); err != nil {
		t.Fatal(err)
	}
	fast0, slow0 := r.weights(t)
	r.engine.RunUntil(3 * time.Minute)
	fast1, slow1 := r.weights(t)
	if fast0 != fast1 || slow0 != slow1 {
		t.Fatalf("weights changed after policy deletion: %d/%d -> %d/%d", fast0, slow0, fast1, slow1)
	}
	if len(r.ctrl.Managed()) != 0 {
		t.Fatal("deleted policy still managed")
	}
}

func TestPolicyControllerUpdateRebuildsPipeline(t *testing.T) {
	r := newPolicyRig(t)
	_ = r.policies.Create(&OptimizationPolicy{Name: "api"})
	r.engine.RunUntil(2 * time.Minute)
	// Update with a PeakEWMA filter: takes effect without a restart and
	// management continues.
	if err := r.policies.Update(&OptimizationPolicy{Name: "api", FilterKind: ewma.KindPeak}); err != nil {
		t.Fatal(err)
	}
	before := r.ctrl.Updates()
	r.engine.RunUntil(3 * time.Minute)
	if r.ctrl.Updates() == before {
		t.Fatal("updates stopped after policy update")
	}
	fast, slow := r.weights(t)
	if fast <= slow {
		t.Fatalf("post-update weights: %d/%d", fast, slow)
	}
}

func TestPolicyControllerMissingTargetRetries(t *testing.T) {
	r := newPolicyRig(t)
	// Policy for a split that does not exist yet.
	_ = r.policies.Create(&OptimizationPolicy{Name: "later", TargetSplit: "later-split"})
	r.engine.RunUntil(time.Minute) // must not panic or wedge
	// Create the target; management picks it up.
	_ = r.m.Splits().Create(&smi.TrafficSplit{
		Name: "later-split", RootService: "api",
		Backends: []smi.Backend{{Service: "api-fast", Weight: 500}, {Service: "api-slow", Weight: 500}},
	})
	r.engine.RunUntil(3 * time.Minute)
	ts, _ := r.m.Splits().Get("later-split")
	moved := false
	for _, b := range ts.Backends {
		if b.Weight != 500 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("late-created target never reconciled")
	}
}

func TestPolicyControllerRequiresDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil deps did not panic")
		}
	}()
	NewPolicyController(nil, nil, nil, nil, PolicyControllerConfig{})
}
