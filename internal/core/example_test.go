package core_test

import (
	"fmt"
	"time"

	"l3/internal/core"
)

// The pure rate-control function (Algorithm 2): an above-average weight
// grows opportunistically when the RPS drops and converges toward the
// average when it surges.
func ExampleRateControlAdjust() {
	fmt.Printf("RPS halved (c=-1):   %.0f\n", core.RateControlAdjust(-1, 2000, 1000))
	fmt.Printf("RPS steady (c=0):    %.0f\n", core.RateControlAdjust(0, 2000, 1000))
	fmt.Printf("RPS surging (c=3):   %.0f\n", core.RateControlAdjust(3, 2000, 1000))
	// Output:
	// RPS halved (c=-1):   2875
	// RPS steady (c=0):    2000
	// RPS surging (c=3):   1032
}

// Algorithm 1 end to end: feed two backends' collected metrics into the
// weighter and read the resulting traffic weights. The slow, flaky backend
// ends up with a fraction of the fast one's share.
func ExampleWeighter() {
	w := core.NewWeighter(core.WeightingConfig{Penalty: 600 * time.Millisecond})
	m := map[string]core.BackendMetrics{
		"api-east": {RPS: 100, SuccessRate: 1.0, P99: 0.050, P99Valid: true, HasTraffic: true},
		"api-west": {RPS: 100, SuccessRate: 0.9, P99: 0.200, P99Valid: true, HasTraffic: true},
	}
	var weights map[string]float64
	for i := 0; i < 40; i++ { // let the EWMAs converge
		weights = w.Update(time.Duration(i)*5*time.Second, m)
	}
	fmt.Printf("east %.1f\n", weights["api-east"])
	fmt.Printf("west %.1f\n", weights["api-west"])
	// Output:
	// east 20.0
	// west 3.8
}
