package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestAdjustNoChangeLeavesWeight(t *testing.T) {
	if got := RateControlAdjust(0, 2000, 1000); got != 2000 {
		t.Fatalf("c=0 adjust = %v, want unchanged", got)
	}
}

func TestAdjustIncreaseConvergesTowardAverage(t *testing.T) {
	// Equation 5: for growing c, both above- and below-average weights
	// approach wµ.
	for _, wb := range []float64{2000, 500} {
		prev := wb
		for _, c := range []float64{0.5, 1, 2, 3, 5} {
			got := RateControlAdjust(c, wb, 1000)
			if math.Abs(got-1000) > math.Abs(prev-1000)+1e-9 {
				t.Fatalf("wb=%v c=%v: %v further from average than at smaller c (%v)", wb, c, got, prev)
			}
			prev = got
		}
		if final := RateControlAdjust(10, wb, 1000); math.Abs(final-1000) > 30 {
			t.Fatalf("wb=%v at c=10: %v, want ~1000", wb, final)
		}
	}
}

func TestAdjustDecreaseDivergesFromAverage(t *testing.T) {
	// c < 0: above-average weights grow, below-average shrink — the
	// opportunistic shift to faster backends.
	if got := RateControlAdjust(-0.5, 2000, 1000); got <= 2000 {
		t.Fatalf("above-average weight did not grow: %v", got)
	}
	if got := RateControlAdjust(-0.5, 500, 1000); got >= 500 {
		t.Fatalf("below-average weight did not shrink: %v", got)
	}
}

func TestAdjustPublishedFormulaAnchors(t *testing.T) {
	// Algorithm 2 as published: line 10 at c=-1, wb=2000, wµ=1000:
	// 2·2000 − 1000 − 1000/(1+3)^1.5 = 3000 − 125 = 2875 (the "over 2800"
	// the paper's §3.2 example describes for a halved RPS).
	if got := RateControlAdjust(-1, 2000, 1000); math.Abs(got-2875) > 1e-9 {
		t.Fatalf("line-10 anchor = %v, want 2875", got)
	}
	// Line 8 at c=-1, wb=500, wµ=1000: 500/(1+2)^1.5 = 500/5.196… = 96.22.
	want := 500 / math.Pow(3, 1.5)
	if got := RateControlAdjust(-1, 500, 1000); math.Abs(got-want) > 1e-9 {
		t.Fatalf("line-8 anchor = %v, want %v", got, want)
	}
	// Equation 5 at c=1, wb=2000, wµ=1000:
	// 1000 − 1000/2^1.5 + 2000/2^1.5 = 1000 + 1000/2.828… = 1353.55.
	want = 1000 + 1000/math.Pow(2, 1.5)
	if got := RateControlAdjust(1, 2000, 1000); math.Abs(got-want) > 1e-9 {
		t.Fatalf("eq-5 anchor = %v, want %v", got, want)
	}
}

func TestAdjustAverageWeightFixedPointForIncreases(t *testing.T) {
	// For c >= 0 the average weight is a fixed point of Equation 5. For
	// c < 0 it is NOT: Algorithm 2 line 7 routes wb <= wµ (including
	// equality) through the shrink branch, so an average-weight backend
	// shrinks on an RPS drop — a deliberate property of the published
	// pseudocode.
	f := func(c uint8) bool {
		cc := float64(c) / 64 // c in [0, ~4]
		got := RateControlAdjust(cc, 1000, 1000)
		return math.Abs(got-1000) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := RateControlAdjust(-0.5, 1000, 1000); got >= 1000 {
		t.Fatalf("average weight at c<0 = %v, want shrunk per line 8", got)
	}
}

func TestAdjustContinuousAtZeroProperty(t *testing.T) {
	// The piecewise definition must not jump at c=0.
	for _, wb := range []float64{100, 1000, 5000} {
		up := RateControlAdjust(1e-9, wb, 1000)
		down := RateControlAdjust(-1e-9, wb, 1000)
		if math.Abs(up-wb) > 0.01 || math.Abs(down-wb) > 0.01 {
			t.Fatalf("discontinuity at c=0 for wb=%v: %v / %v", wb, up, down)
		}
	}
}

func TestRateControllerFirstSampleNoChange(t *testing.T) {
	rc := NewRateController(RateControlConfig{})
	w := map[string]float64{"a": 2000, "b": 500}
	rc.Apply(0, w, 100)
	if w["a"] != 2000 || w["b"] != 500 {
		t.Fatalf("first sample adjusted weights: %v", w)
	}
}

func TestRateControllerSteadyRPSLeavesWeights(t *testing.T) {
	rc := NewRateController(RateControlConfig{})
	for i := 0; i < 50; i++ {
		w := map[string]float64{"a": 2000, "b": 500}
		rc.Apply(time.Duration(i)*5*time.Second, w, 100)
		if i > 10 {
			if math.Abs(w["a"]-2000) > 50 || math.Abs(w["b"]-500) > 20 {
				t.Fatalf("steady RPS moved weights at round %d: %v (c=%v)", i, w, rc.LastRelativeChange())
			}
		}
	}
}

func TestRateControllerSurgeFlattensWeights(t *testing.T) {
	rc := NewRateController(RateControlConfig{})
	for i := 0; i < 20; i++ {
		rc.Apply(time.Duration(i)*5*time.Second, map[string]float64{"a": 2000, "b": 500}, 100)
	}
	// RPS quadruples: c ≈ 3 against the lagging EWMA.
	w := map[string]float64{"a": 2000, "b": 500}
	rc.Apply(100*time.Second, w, 400)
	if rc.LastRelativeChange() < 2 {
		t.Fatalf("relative change = %v, want ~3", rc.LastRelativeChange())
	}
	// Both weights must have moved strongly toward the average 1250.
	if w["a"] > 1500 || w["b"] < 1000 {
		t.Fatalf("surge did not flatten: %v", w)
	}
}

func TestRateControllerDropShiftsToFastBackends(t *testing.T) {
	rc := NewRateController(RateControlConfig{})
	for i := 0; i < 20; i++ {
		rc.Apply(time.Duration(i)*5*time.Second, map[string]float64{"a": 2000, "b": 500}, 100)
	}
	w := map[string]float64{"a": 2000, "b": 500}
	rc.Apply(100*time.Second, w, 20) // RPS collapses
	if rc.LastRelativeChange() > -0.5 {
		t.Fatalf("relative change = %v, want strongly negative", rc.LastRelativeChange())
	}
	if w["a"] <= 2000 {
		t.Fatalf("fast backend weight should grow: %v", w["a"])
	}
	if w["b"] >= 500 {
		t.Fatalf("slow backend weight should shrink: %v", w["b"])
	}
}

func TestRateControllerFloor(t *testing.T) {
	rc := NewRateController(RateControlConfig{MinWeight: 1})
	for i := 0; i < 20; i++ {
		rc.Apply(time.Duration(i)*5*time.Second, map[string]float64{"a": 1000, "b": 1.2}, 100)
	}
	w := map[string]float64{"a": 1000, "b": 1.2}
	rc.Apply(100*time.Second, w, 10)
	if w["b"] < 1 {
		t.Fatalf("weight %v below the floor", w["b"])
	}
	// The default floor is only a keep-positive guard, so braking is free
	// to push a weight well below 1 natural unit.
	rc = NewRateController(RateControlConfig{})
	for i := 0; i < 20; i++ {
		rc.Apply(time.Duration(i)*5*time.Second, map[string]float64{"a": 1000, "b": 1.2}, 100)
	}
	w = map[string]float64{"a": 1000, "b": 1.2}
	rc.Apply(100*time.Second, w, 10)
	if w["b"] >= 1.2 || w["b"] < rc.cfg.MinWeight {
		t.Fatalf("weight = %v, want shrunk but no lower than %v", w["b"], rc.cfg.MinWeight)
	}
}

func TestRateControllerEmptyWeights(t *testing.T) {
	rc := NewRateController(RateControlConfig{})
	out := rc.Apply(0, map[string]float64{}, 100)
	if len(out) != 0 {
		t.Fatal("empty weights grew")
	}
	// The RPS sample must still be folded in (λ-seed blend: (0+100)/2).
	if rc.RPSEWMA() != 50 {
		t.Fatalf("RPS not observed on empty weights: %v", rc.RPSEWMA())
	}
}

func TestRateControllerEmptyWeightsUpdatesRelativeChange(t *testing.T) {
	// Regression: an Apply with no backends must still run the full
	// observation cycle, so LastRelativeChange reflects the newest sample
	// instead of going stale.
	rc := NewRateController(RateControlConfig{})
	for i := 0; i < 20; i++ {
		rc.Apply(time.Duration(i)*5*time.Second, map[string]float64{"a": 1000}, 100)
	}
	priorC := rc.LastRelativeChange()
	rc.Apply(100*time.Second, map[string]float64{}, 400)
	if c := rc.LastRelativeChange(); c < 2 {
		t.Fatalf("c after empty-weights surge = %v (prior %v), want ~3", c, priorC)
	}
	// And the EWMA moved, so the next cycle compares against fresh state.
	if rc.RPSEWMA() <= 100 {
		t.Fatalf("EWMA did not fold in the surge sample: %v", rc.RPSEWMA())
	}
}

func TestRateControllerZeroEWMANoAdjustment(t *testing.T) {
	// Zero traffic history then a burst: EWMA 0 -> c defined as 0.
	rc := NewRateController(RateControlConfig{})
	rc.Apply(0, map[string]float64{"a": 100}, 0)
	w := map[string]float64{"a": 100}
	rc.Apply(5*time.Second, w, 500)
	if rc.LastRelativeChange() != 0 {
		t.Fatalf("c with zero EWMA = %v, want 0", rc.LastRelativeChange())
	}
}
