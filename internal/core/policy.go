package core

import (
	"errors"
	"fmt"
	"time"

	"l3/internal/cluster"
	"l3/internal/ewma"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/timeseries"
)

// OptimizationPolicy is the user-defined object the L3 operator manages
// (§4: L3 runs "as a containerized workload ... managing user-defined
// objects declaring desired latency optimizations"). One policy targets
// one TrafficSplit and carries the per-workload knobs §3 exposes: the
// latency percentile, the penalty factor P, the filter variant and whether
// the rate controller runs. Future work in the paper — determining P
// per-workload — is exactly a per-policy setting here.
type OptimizationPolicy struct {
	// Name identifies the policy.
	Name string
	// TargetSplit names the TrafficSplit to manage; empty means a split
	// named like the policy.
	TargetSplit string
	// Percentile of successful-request latency to optimise (0 = the
	// paper's default 0.99).
	Percentile float64
	// Penalty is P (0 = the paper's default 600 ms).
	Penalty time.Duration
	// FilterKind selects EWMA or PeakEWMA (0 = EWMA).
	FilterKind ewma.Kind
	// DisableRateControl turns Algorithm 2 off for this workload.
	DisableRateControl bool
}

// ObjectName implements cluster.Object.
func (p *OptimizationPolicy) ObjectName() string { return p.Name }

// Target returns the managed split's name.
func (p *OptimizationPolicy) Target() string {
	if p.TargetSplit != "" {
		return p.TargetSplit
	}
	return p.Name
}

// Policy validation errors.
var (
	ErrPolicyNoName        = errors.New("core: policy has no name")
	ErrPolicyBadPercentile = errors.New("core: policy percentile outside (0, 1)")
	ErrPolicyBadPenalty    = errors.New("core: policy penalty is negative")
	ErrPolicyUnknownFilter = errors.New("core: policy filter kind unknown")
)

// Validate checks the policy's fields.
func (p *OptimizationPolicy) Validate() error {
	if p.Name == "" {
		return ErrPolicyNoName
	}
	if p.Percentile != 0 && (p.Percentile <= 0 || p.Percentile >= 1) {
		return fmt.Errorf("%w: %v", ErrPolicyBadPercentile, p.Percentile)
	}
	if p.Penalty < 0 {
		return fmt.Errorf("%w: %v", ErrPolicyBadPenalty, p.Penalty)
	}
	switch p.FilterKind {
	case 0, ewma.KindEWMA, ewma.KindPeak:
	default:
		return fmt.Errorf("%w: %v", ErrPolicyUnknownFilter, p.FilterKind)
	}
	return nil
}

// PolicyStore stores OptimizationPolicies with validation and watches.
type PolicyStore struct {
	inner *cluster.Store[*OptimizationPolicy]
}

// NewPolicyStore returns an empty store.
func NewPolicyStore() *PolicyStore {
	return &PolicyStore{inner: cluster.NewStore[*OptimizationPolicy]()}
}

// Create validates and inserts a policy.
func (s *PolicyStore) Create(p *OptimizationPolicy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	cp := *p
	return s.inner.Create(&cp)
}

// Update validates and replaces a policy.
func (s *PolicyStore) Update(p *OptimizationPolicy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	cp := *p
	return s.inner.Update(&cp)
}

// Delete removes a policy.
func (s *PolicyStore) Delete(name string) error { return s.inner.Delete(name) }

// Get returns a copy of the named policy.
func (s *PolicyStore) Get(name string) (*OptimizationPolicy, bool) {
	p, _, ok := s.inner.Get(name)
	if !ok {
		return nil, false
	}
	cp := *p
	return &cp, true
}

// List returns copies of all policies sorted by name.
func (s *PolicyStore) List() []*OptimizationPolicy {
	stored := s.inner.List()
	out := make([]*OptimizationPolicy, len(stored))
	for i, p := range stored {
		cp := *p
		out[i] = &cp
	}
	return out
}

// Watch registers fn for policy mutations.
func (s *PolicyStore) Watch(replay bool, fn func(cluster.Event[*OptimizationPolicy])) (cancel func()) {
	return s.inner.Watch(replay, func(e cluster.Event[*OptimizationPolicy]) {
		cp := *e.Object
		fn(cluster.Event[*OptimizationPolicy]{Type: e.Type, Object: &cp})
	})
}

// PolicyControllerConfig parameterises the policy-driven operator.
type PolicyControllerConfig struct {
	// Interval is the reconcile period (default 5 s).
	Interval time.Duration
	// WeightScale converts float weights to TrafficSplit integers
	// (default 1000).
	WeightScale float64
	// Window is the collectors' query window (default 10 s).
	Window time.Duration
	// Match scopes metric queries (e.g. {"src": "cluster-1"} for a
	// per-cluster instance).
	Match metricLabels
	// Elector gates writes when set.
	Elector *cluster.Elector
}

// metricLabels aliases the metrics label type without forcing callers of
// the zero value to import it.
type metricLabels = map[string]string

// PolicyController is the declarative flavour of the operator: the managed
// set is whatever OptimizationPolicies exist, each reconciled with an L3
// pipeline configured from its policy. Policy create/update/delete takes
// effect immediately (update rebuilds the policy's filters, as a changed
// percentile or filter kind invalidates the old EWMA state).
type PolicyController struct {
	engine   *sim.Engine
	splits   *smi.Store
	db       *timeseries.DB
	policies *PolicyStore
	cfg      PolicyControllerConfig

	managed     map[string]*managedPolicy
	ticker      *sim.Timer
	cancelWatch func()
	updates     uint64
}

type managedPolicy struct {
	policy    OptimizationPolicy
	assigner  *L3Assigner
	collector *Collector
}

// NewPolicyController wires the operator; call Start to begin.
func NewPolicyController(engine *sim.Engine, splits *smi.Store, db *timeseries.DB, policies *PolicyStore, cfg PolicyControllerConfig) *PolicyController {
	if engine == nil || splits == nil || db == nil || policies == nil {
		panic("core: NewPolicyController requires engine, splits, db and policies")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.WeightScale <= 0 {
		cfg.WeightScale = 1000
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Second
	}
	return &PolicyController{
		engine:   engine,
		splits:   splits,
		db:       db,
		policies: policies,
		cfg:      cfg,
		managed:  make(map[string]*managedPolicy),
	}
}

// Start begins watching policies (with replay) and reconciling.
func (c *PolicyController) Start() {
	c.cancelWatch = c.policies.Watch(true, c.onPolicyEvent)
	c.ticker = c.engine.Every(c.cfg.Interval, c.updateAll)
	if c.cfg.Elector != nil {
		c.cfg.Elector.Run()
	}
}

// Stop halts the control loops.
func (c *PolicyController) Stop() {
	if c.cancelWatch != nil {
		c.cancelWatch()
	}
	if c.ticker != nil {
		c.ticker.Cancel()
	}
	if c.cfg.Elector != nil {
		c.cfg.Elector.Stop()
	}
}

// Updates returns the number of applied weight-update rounds.
func (c *PolicyController) Updates() uint64 { return c.updates }

// Managed returns the names of policies under management.
func (c *PolicyController) Managed() []string {
	out := make([]string, 0, len(c.managed))
	for name := range c.managed {
		out = append(out, name)
	}
	return out
}

func (c *PolicyController) onPolicyEvent(e cluster.Event[*OptimizationPolicy]) {
	switch e.Type {
	case cluster.Added, cluster.Updated:
		c.managed[e.Object.Name] = c.build(*e.Object)
	case cluster.Deleted:
		delete(c.managed, e.Object.Name)
	}
}

func (c *PolicyController) build(p OptimizationPolicy) *managedPolicy {
	match := make(map[string]string, len(c.cfg.Match))
	for k, v := range c.cfg.Match {
		match[k] = v
	}
	return &managedPolicy{
		policy: p,
		assigner: NewL3Assigner(WeightingConfig{
			Penalty:    p.Penalty,
			FilterKind: p.FilterKind,
		}, RateControlConfig{}, !p.DisableRateControl),
		collector: &Collector{
			DB:         c.db,
			Window:     c.cfg.Window,
			Percentile: p.Percentile,
			Match:      match,
		},
	}
}

func (c *PolicyController) isLeader() bool {
	return c.cfg.Elector == nil || c.cfg.Elector.IsLeader()
}

func (c *PolicyController) updateAll() {
	now := c.engine.Now()
	leader := c.isLeader()
	for _, m := range c.managed {
		ts, ok := c.splits.Get(m.policy.Target())
		if !ok {
			continue // target not created yet; retry next round
		}
		metrics := m.collector.Collect(now, ts.RootService, ts.BackendNames())
		weights := m.assigner.Assign(now, metrics)
		if !leader {
			continue
		}
		for b, w := range weights {
			if v, ok := scaleWeight(w, c.cfg.WeightScale); ok {
				_ = ts.SetWeight(b, v)
			}
		}
		if err := c.splits.Update(ts); err != nil {
			continue
		}
		c.updates++
	}
}
