package core

import (
	"math"
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/cluster"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/timeseries"
	"l3/internal/wan"
)

// testRig wires a 2-backend mesh, a scraper, a load loop and an L3
// controller together — the full Figure 5 pipeline in miniature.
type testRig struct {
	engine     *sim.Engine
	m          *mesh.Mesh
	db         *timeseries.DB
	controller *Controller
	selfReg    *metrics.Registry
}

func newRig(t *testing.T, elector *cluster.Elector, fastLat, slowLat time.Duration) *testRig {
	t.Helper()
	engine := sim.NewEngine()
	rng := sim.NewRand(42)
	m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	if _, err := m.AddService("api"); err != nil {
		t.Fatal(err)
	}
	mk := func(d time.Duration) backend.Profile {
		return func(time.Duration, *sim.Rand) (time.Duration, bool) { return d, true }
	}
	if _, err := m.AddBackend("api", "api-fast", "cluster-1", backend.Config{}, mk(fastLat)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBackend("api", "api-slow", "cluster-2", backend.Config{}, mk(slowLat)); err != nil {
		t.Fatal(err)
	}
	if err := m.Splits().Create(&smi.TrafficSplit{
		Name: "api", RootService: "api",
		Backends: []smi.Backend{{Service: "api-fast", Weight: 500}, {Service: "api-slow", Weight: 500}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPicker("api", balancer.NewWeightedSplit(m.Splits(), rng.Fork(), nil)); err != nil {
		t.Fatal(err)
	}

	db := timeseries.NewDB(time.Minute)
	NewScraper(engine, db, m.Registry(), 5*time.Second).Start()

	selfReg := metrics.NewRegistry()
	ctrl := NewController(engine, m.Splits(), NewCollector(db), ControllerConfig{
		NewAssigner:  func() Assigner { return NewL3Assigner(WeightingConfig{}, RateControlConfig{}, true) },
		Elector:      elector,
		SelfRegistry: selfReg,
	})
	ctrl.Start()

	// Open-loop load: 50 RPS from cluster-1.
	engine.Every(20*time.Millisecond, func() {
		_ = m.Call("cluster-1", "api", func(mesh.Result) {})
	})
	return &testRig{engine: engine, m: m, db: db, controller: ctrl, selfReg: selfReg}
}

func (r *testRig) weights(t *testing.T) (fast, slow int64) {
	t.Helper()
	ts, ok := r.m.Splits().Get("api")
	if !ok {
		t.Fatal("split vanished")
	}
	for _, b := range ts.Backends {
		switch b.Service {
		case "api-fast":
			fast = b.Weight
		case "api-slow":
			slow = b.Weight
		}
	}
	return fast, slow
}

func TestControllerShiftsWeightToFastBackend(t *testing.T) {
	r := newRig(t, nil, 20*time.Millisecond, 400*time.Millisecond)
	r.engine.RunUntil(2 * time.Minute)

	fast, slow := r.weights(t)
	if fast <= slow {
		t.Fatalf("weights fast=%d slow=%d, want fast > slow", fast, slow)
	}
	if float64(fast)/float64(slow) < 3 {
		t.Fatalf("fast/slow = %d/%d, want a strong (≥3x) skew for a 20x latency gap", fast, slow)
	}
	if r.controller.Updates() == 0 {
		t.Fatal("controller performed no updates")
	}
}

func TestControllerTracksSplitLifecycle(t *testing.T) {
	r := newRig(t, nil, 20*time.Millisecond, 40*time.Millisecond)
	r.engine.RunUntil(10 * time.Second)
	if got := r.controller.Tracked(); len(got) != 1 || got[0] != "api" {
		t.Fatalf("Tracked = %v", got)
	}
	if _, ok := r.controller.Assigner("api"); !ok {
		t.Fatal("assigner missing for tracked split")
	}
	if err := r.m.Splits().Delete("api"); err != nil {
		t.Fatal(err)
	}
	r.engine.RunUntil(20 * time.Second)
	if len(r.controller.Tracked()) != 0 {
		t.Fatal("deleted split still tracked")
	}
}

func TestControllerForgetsRemovedBackends(t *testing.T) {
	r := newRig(t, nil, 20*time.Millisecond, 40*time.Millisecond)
	r.engine.RunUntil(30 * time.Second)
	a, _ := r.controller.Assigner("api")
	l3 := a.(*L3Assigner)
	if _, ok := l3.Weighter().View("api-slow"); !ok {
		t.Fatal("api-slow has no state before removal")
	}
	ts, _ := r.m.Splits().Get("api")
	ts.Backends = ts.Backends[:1] // drop api-slow
	if err := r.m.Splits().Update(ts); err != nil {
		t.Fatal(err)
	}
	if _, ok := l3.Weighter().View("api-slow"); ok {
		t.Fatal("api-slow state not forgotten after removal from split")
	}
}

func TestControllerNonLeaderDoesNotWrite(t *testing.T) {
	engine := sim.NewEngine()
	lock := cluster.NewLeaseLock()
	// Another replica holds the lease forever.
	if !lock.TryAcquire("other", 0, time.Hour) {
		t.Fatal("setup: could not seed lease")
	}
	elector := cluster.NewElector(engine, lock, cluster.ElectorConfig{ID: "standby"})

	r := newRigWithEngine(t, engine, elector)
	r.engine.RunUntil(2 * time.Minute)
	fast, slow := r.weights(t)
	if fast != 500 || slow != 500 {
		t.Fatalf("standby wrote weights: fast=%d slow=%d", fast, slow)
	}
	if r.controller.Updates() != 0 {
		t.Fatalf("standby counted %d updates", r.controller.Updates())
	}
}

// newRigWithEngine is newRig with a caller-provided engine (so tests can
// pre-arrange elector state on the same virtual clock).
func newRigWithEngine(t *testing.T, engine *sim.Engine, elector *cluster.Elector) *testRig {
	t.Helper()
	rng := sim.NewRand(42)
	m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	_, _ = m.AddService("api")
	mk := func(d time.Duration) backend.Profile {
		return func(time.Duration, *sim.Rand) (time.Duration, bool) { return d, true }
	}
	_, _ = m.AddBackend("api", "api-fast", "cluster-1", backend.Config{}, mk(20*time.Millisecond))
	_, _ = m.AddBackend("api", "api-slow", "cluster-2", backend.Config{}, mk(400*time.Millisecond))
	_ = m.Splits().Create(&smi.TrafficSplit{
		Name: "api", RootService: "api",
		Backends: []smi.Backend{{Service: "api-fast", Weight: 500}, {Service: "api-slow", Weight: 500}},
	})
	_ = m.SetPicker("api", balancer.NewWeightedSplit(m.Splits(), rng.Fork(), nil))
	db := timeseries.NewDB(time.Minute)
	NewScraper(engine, db, m.Registry(), 5*time.Second).Start()
	ctrl := NewController(engine, m.Splits(), NewCollector(db), ControllerConfig{
		NewAssigner: func() Assigner { return NewL3Assigner(WeightingConfig{}, RateControlConfig{}, true) },
		Elector:     elector,
	})
	ctrl.Start()
	engine.Every(20*time.Millisecond, func() {
		_ = m.Call("cluster-1", "api", func(mesh.Result) {})
	})
	return &testRig{engine: engine, m: m, db: db, controller: ctrl}
}

func TestControllerLeaderFailover(t *testing.T) {
	engine := sim.NewEngine()
	lock := cluster.NewLeaseLock()
	leaderElector := cluster.NewElector(engine, lock, cluster.ElectorConfig{ID: "leader"})
	standbyElector := cluster.NewElector(engine, lock, cluster.ElectorConfig{ID: "standby"})

	// The "leader" elector campaigns but has no controller; the controller
	// under test runs as the standby.
	leaderElector.Run()
	r := newRigWithEngine(t, engine, standbyElector)
	r.engine.RunUntil(time.Minute)
	if r.controller.Updates() != 0 {
		t.Fatal("standby wrote while leader alive")
	}
	leaderElector.Stop() // resign
	r.engine.RunUntil(2 * time.Minute)
	if r.controller.Updates() == 0 {
		t.Fatal("standby never took over after leader resigned")
	}
	fast, slow := r.weights(t)
	if fast <= slow {
		t.Fatalf("post-failover weights fast=%d slow=%d", fast, slow)
	}
}

func TestControllerSelfMetricsExported(t *testing.T) {
	r := newRig(t, nil, 20*time.Millisecond, 400*time.Millisecond)
	r.engine.RunUntil(time.Minute)
	w := r.selfReg.Gauge(MetricWeight, metrics.Labels{"split": "api", "backend": "api-fast"})
	if w.Value() <= 0 {
		t.Fatalf("self weight gauge = %v", w.Value())
	}
	p99 := r.selfReg.Gauge(MetricFilteredP99, metrics.Labels{"split": "api", "backend": "api-slow"})
	if p99.Value() < 0.3 || p99.Value() > 1 {
		t.Fatalf("filtered P99 gauge = %v, want ~0.4s", p99.Value())
	}
	leader := r.selfReg.Gauge(MetricLeader, nil)
	if leader.Value() != 1 {
		t.Fatalf("leader gauge = %v, want 1 (no elector => always leader)", leader.Value())
	}
	updates := r.selfReg.Counter(MetricUpdatesTotal, metrics.Labels{"split": "api"})
	if updates.Value() == 0 {
		t.Fatal("updates counter not incremented")
	}
}

func TestControllerRequiresDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewController without deps did not panic")
		}
	}()
	NewController(sim.NewEngine(), nil, nil, ControllerConfig{})
}

func TestScaleWeight(t *testing.T) {
	if got, ok := scaleWeight(2.5, 1000); !ok || got != 2500 {
		t.Fatalf("scaleWeight = %d, %v", got, ok)
	}
	if got, ok := scaleWeight(0.0001, 1000); !ok || got != 1 {
		t.Fatalf("tiny weight = %d, want floor 1", got)
	}
	if got, ok := scaleWeight(1e300, 1000); !ok || got <= 0 {
		t.Fatalf("huge weight overflowed: %d", got)
	}
	if _, ok := scaleWeight(math.NaN(), 1000); ok {
		t.Fatal("NaN weight scaled instead of being rejected")
	}
	if _, ok := scaleWeight(math.Inf(1), 1000); ok {
		t.Fatal("Inf weight scaled instead of being rejected")
	}
}
