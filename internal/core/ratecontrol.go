package core

import (
	"math"
	"sort"
	"time"

	"l3/internal/ewma"
)

// RateControlConfig parameterises Algorithm 2.
type RateControlConfig struct {
	// RPSHalfLife is the half-life of the total-RPS EWMA the relative
	// change is computed against (default 10 s, like the per-backend RPS
	// filter).
	RPSHalfLife time.Duration
	// MinWeight floors adjusted weights so braking can never zero a
	// backend out (default 0.001). Algorithm 2 line 13's floor of one
	// weight unit is in *integer* TrafficSplit units, which the
	// controller's scaling already enforces; flooring at 1 in natural
	// 1/seconds units would override Algorithm 1's verdict on degraded
	// backends, whose healthy weights are the same order of magnitude.
	MinWeight float64
}

func (c RateControlConfig) withDefaults() RateControlConfig {
	if c.RPSHalfLife <= 0 {
		c.RPSHalfLife = 10 * time.Second
	}
	if c.MinWeight <= 0 {
		c.MinWeight = 0.001
	}
	return c
}

// RateControlAdjust is the pure weight-adjustment function of Algorithm 2
// lines 4-12 (Equation 5 and its decrease-side counterparts): given the
// relative RPS change c, a backend's weight wb and the average weight wMu,
// it returns the adjusted weight (before the floor).
//
//   - c > 0 (RPS rising): every weight converges toward the average so the
//     surge spreads across all backends.
//   - c < 0, wb ≤ wMu (RPS falling, slow backend): the weight shrinks,
//     opportunistically shifting share to faster backends.
//   - c < 0, wb > wMu (RPS falling, fast backend): the weight grows away
//     from the average.
//   - c = 0: the weight is unchanged.
func RateControlAdjust(c, wb, wMu float64) float64 {
	switch {
	case c > 0:
		k := math.Pow(1+c*c, 1.5)
		return wMu - wMu/k + wb/k
	case c < 0:
		if wb <= wMu {
			return wb / math.Pow(1+2*c*c, 1.5)
		}
		return 2*wb - wMu - (wb-wMu)/math.Pow(1+3*c*c, 1.5)
	default:
		return wb
	}
}

// RateController implements Algorithm 2 statefully: it maintains the EWMA
// of total RPS and rewrites a weight set whenever the newest RPS sample
// deviates from it. Not safe for concurrent use.
type RateController struct {
	cfg      RateControlConfig
	totalRPS *ewma.EWMA
	lastC    float64
}

// NewRateController returns a controller with cfg (zero fields take
// defaults).
func NewRateController(cfg RateControlConfig) *RateController {
	cfg = cfg.withDefaults()
	return &RateController{
		cfg:      cfg,
		totalRPS: ewma.New(cfg.RPSHalfLife, 0),
	}
}

// Apply adjusts weights in place per Algorithm 2, given the newest total
// RPS sample, and returns the same map. The relative change is computed
// against the EWMA before the sample is folded in, since the EWMA's lag is
// exactly what makes the comparison meaningful.
func (rc *RateController) Apply(now time.Duration, weights map[string]float64, rpsLast float64) map[string]float64 {
	c := rc.relativeChange(rpsLast)
	rc.observe(now, rpsLast)
	rc.lastC = c
	if len(weights) == 0 {
		return weights
	}

	var sum float64
	names := make([]string, 0, len(weights))
	for b, w := range weights {
		sum += w
		names = append(names, b)
	}
	sort.Strings(names)
	wMu := sum / float64(len(weights))

	for _, b := range names {
		w := RateControlAdjust(c, weights[b], wMu)
		if w < rc.cfg.MinWeight {
			w = rc.cfg.MinWeight
		}
		weights[b] = w
	}
	return weights
}

// LastRelativeChange returns the c computed by the most recent Apply, for
// instrumentation.
func (rc *RateController) LastRelativeChange() float64 { return rc.lastC }

// RPSEWMA returns the current filtered total-RPS value.
func (rc *RateController) RPSEWMA() float64 { return rc.totalRPS.Value() }

func (rc *RateController) observe(now time.Duration, rps float64) {
	rc.totalRPS.Observe(now, rps)
}

// relativeChange is Algorithm 2 line 1: (RPS_last − RPS_EWMA) / RPS_EWMA,
// with a zero EWMA (no history) mapping to no change.
func (rc *RateController) relativeChange(rpsLast float64) float64 {
	e := rc.totalRPS.Value()
	if e <= 0 {
		return 0
	}
	return (rpsLast - e) / e
}
