package core

import (
	"math"
	"testing"
	"time"

	"l3/internal/histogram"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/timeseries"
)

// seedMetrics simulates two scrape intervals of traffic for one backend:
// reqs requests at the given success fraction, successes spread across a
// latency histogram centred on latSeconds, and a constant inflight gauge.
func seedMetrics(t *testing.T, db *timeseries.DB, service, backendName string, reqs int, successFrac, latSeconds, inflight float64) {
	t.Helper()
	reg := metrics.NewRegistry()
	base := metrics.Labels{"service": service, "backend": backendName}
	succ := base.With("classification", mesh.ClassSuccess)
	fail := base.With("classification", mesh.ClassFailure)

	db.Scrape(0, reg) // empty baseline would create no series; scrape after registration instead

	nSucc := int(float64(reqs) * successFrac)
	h := reg.Histogram(mesh.MetricResponseLatency, succ, histogram.LinkerdLatencyBounds)
	reg.Counter(mesh.MetricResponseTotal, succ).Add(0)
	reg.Counter(mesh.MetricResponseTotal, fail).Add(0)
	reg.Gauge(mesh.MetricInflight, base).Set(inflight)
	db.Scrape(5*time.Second, reg)

	reg.Counter(mesh.MetricResponseTotal, succ).Add(float64(nSucc))
	reg.Counter(mesh.MetricResponseTotal, fail).Add(float64(reqs - nSucc))
	for i := 0; i < nSucc; i++ {
		h.Observe(latSeconds)
	}
	db.Scrape(10*time.Second, reg)
}

func TestCollectorBasics(t *testing.T) {
	db := timeseries.NewDB(time.Minute)
	// 100 requests over the 5s between scrapes => 20 RPS, 90% success.
	seedMetrics(t, db, "api", "b1", 100, 0.9, 0.045, 3)

	c := NewCollector(db)
	m := c.Collect(10*time.Second, "api", []string{"b1", "ghost"})

	b1 := m["b1"]
	if !b1.HasTraffic {
		t.Fatal("b1 should have traffic")
	}
	if math.Abs(b1.RPS-20) > 0.01 {
		t.Fatalf("RPS = %v, want 20", b1.RPS)
	}
	if math.Abs(b1.SuccessRate-0.9) > 0.01 {
		t.Fatalf("SuccessRate = %v, want 0.9", b1.SuccessRate)
	}
	if !b1.P99Valid || b1.P99 < 0.040 || b1.P99 > 0.051 {
		t.Fatalf("P99 = %v (valid=%v), want ~45ms bucket", b1.P99, b1.P99Valid)
	}
	if !b1.MeanValid || math.Abs(b1.MeanLatency-0.045) > 0.002 {
		t.Fatalf("MeanLatency = %v (valid=%v)", b1.MeanLatency, b1.MeanValid)
	}
	if math.Abs(b1.Inflight-3) > 0.01 {
		t.Fatalf("Inflight = %v, want 3", b1.Inflight)
	}

	ghost := m["ghost"]
	if ghost.HasTraffic {
		t.Fatal("ghost backend reported traffic")
	}
}

func TestCollectorAllFailuresNoP99(t *testing.T) {
	db := timeseries.NewDB(time.Minute)
	seedMetrics(t, db, "api", "dead", 50, 0, 0.1, 0)
	c := NewCollector(db)
	m := c.Collect(10*time.Second, "api", []string{"dead"})
	dead := m["dead"]
	if !dead.HasTraffic {
		t.Fatal("dead backend has traffic (all failing)")
	}
	if dead.SuccessRate != 0 {
		t.Fatalf("SuccessRate = %v, want 0", dead.SuccessRate)
	}
	if dead.P99Valid {
		t.Fatal("P99 should be invalid with zero successful responses")
	}
}

func TestCollectorServiceScoping(t *testing.T) {
	db := timeseries.NewDB(time.Minute)
	seedMetrics(t, db, "api", "b", 100, 1, 0.05, 0)
	seedMetrics(t, db, "web", "b", 200, 1, 0.05, 0)
	c := NewCollector(db)

	api := c.Collect(10*time.Second, "api", []string{"b"})["b"]
	if math.Abs(api.RPS-20) > 0.01 {
		t.Fatalf("scoped RPS = %v, want 20 (api only)", api.RPS)
	}
	all := c.Collect(10*time.Second, "", []string{"b"})["b"]
	if math.Abs(all.RPS-60) > 0.01 {
		t.Fatalf("unscoped RPS = %v, want 60 (both services)", all.RPS)
	}
}

func TestCollectorStaleWindow(t *testing.T) {
	db := timeseries.NewDB(time.Minute)
	seedMetrics(t, db, "api", "b", 100, 1, 0.05, 0)
	c := NewCollector(db)
	// 30s later, the 10s window holds at most one sample: no traffic.
	m := c.Collect(40*time.Second, "api", []string{"b"})
	if m["b"].HasTraffic {
		t.Fatal("stale backend still reports traffic")
	}
}

func TestCollectorDefaultsAndClamps(t *testing.T) {
	c := &Collector{DB: timeseries.NewDB(time.Minute)}
	if c.window() != 10*time.Second {
		t.Fatalf("window default = %v", c.window())
	}
	if c.percentile() != 0.99 {
		t.Fatalf("percentile default = %v", c.percentile())
	}
	c.Percentile = 1.5
	if c.percentile() != 0.99 {
		t.Fatalf("percentile clamp = %v", c.percentile())
	}
}

func TestTotalRPS(t *testing.T) {
	m := map[string]BackendMetrics{
		"a": {RPS: 10, HasTraffic: true},
		"b": {RPS: 20, HasTraffic: true},
		"c": {RPS: 99, HasTraffic: false}, // stale, excluded
	}
	if got := TotalRPS(m); got != 30 {
		t.Fatalf("TotalRPS = %v, want 30", got)
	}
}

func TestCollectorFailureMeanLatency(t *testing.T) {
	db := timeseries.NewDB(time.Minute)
	reg := metrics.NewRegistry()
	base := metrics.Labels{"service": "api", "backend": "b"}
	fail := base.With("classification", mesh.ClassFailure)
	h := reg.Histogram(mesh.MetricResponseLatency, fail, histogram.LinkerdLatencyBounds)
	reg.Counter(mesh.MetricResponseTotal, fail).Add(0)
	db.Scrape(5*time.Second, reg)
	for i := 0; i < 10; i++ {
		h.Observe(0.2)
	}
	reg.Counter(mesh.MetricResponseTotal, fail).Add(10)
	db.Scrape(10*time.Second, reg)

	c := NewCollector(db)
	m := c.Collect(10*time.Second, "api", []string{"b"})["b"]
	if !m.FailureMeanValid || math.Abs(m.FailureMeanLatency-0.2) > 1e-9 {
		t.Fatalf("FailureMeanLatency = %v (valid=%v), want 0.2", m.FailureMeanLatency, m.FailureMeanValid)
	}
	if m.P99Valid {
		t.Fatal("P99 should be invalid with zero successes")
	}
}

func TestCollectorSingleScrapeWindowIsStarved(t *testing.T) {
	db := timeseries.NewDB(time.Minute)
	reg := metrics.NewRegistry()
	base := metrics.Labels{"service": "api", "backend": "b"}
	succ := base.With("classification", mesh.ClassSuccess)
	reg.Counter(mesh.MetricResponseTotal, succ).Add(100)
	db.Scrape(5*time.Second, reg)

	c := NewCollector(db)
	m := c.Collect(10*time.Second, "api", []string{"b"})["b"]
	// One sample cannot produce a rate; but a sample exists, so this is a
	// data gap, not idleness.
	if m.HasTraffic {
		t.Fatal("single-sample window reported traffic")
	}
	if !m.Starved {
		t.Fatal("single-sample window not marked Starved")
	}
	if m.LastSample != 5*time.Second {
		t.Fatalf("LastSample = %v, want 5s", m.LastSample)
	}
}

func TestCollectorNeverScrapedIsNotStarved(t *testing.T) {
	db := timeseries.NewDB(time.Minute)
	c := NewCollector(db)
	m := c.Collect(10*time.Second, "api", []string{"ghost"})["ghost"]
	if m.Starved || m.LastSample != 0 {
		t.Fatalf("never-scraped backend: Starved=%v LastSample=%v, want false/0", m.Starved, m.LastSample)
	}
}

func TestCollectorOutOfOrderScrapesDoNotCorruptWindow(t *testing.T) {
	db := timeseries.NewDB(time.Minute)
	reg := metrics.NewRegistry()
	base := metrics.Labels{"service": "api", "backend": "b"}
	succ := base.With("classification", mesh.ClassSuccess)
	ctr := reg.Counter(mesh.MetricResponseTotal, succ)
	ctr.Add(0)
	db.Scrape(5*time.Second, reg)
	ctr.Add(100)
	db.Scrape(10*time.Second, reg)
	// A late, back-dated scrape (clock skew) carries a value the series
	// already moved past; the DB drops it, so the window stays clean.
	ctr.Add(50)
	db.Scrape(7*time.Second, reg)

	c := NewCollector(db)
	m := c.Collect(10*time.Second, "api", []string{"b"})["b"]
	if !m.HasTraffic || math.Abs(m.RPS-20) > 0.01 {
		t.Fatalf("RPS = %v (traffic=%v), want 20 (out-of-order scrape dropped)", m.RPS, m.HasTraffic)
	}
	if m.LastSample != 10*time.Second {
		t.Fatalf("LastSample = %v, want 10s (frontier unmoved)", m.LastSample)
	}
}

func TestCollectorDuplicateTimestampScrapes(t *testing.T) {
	db := timeseries.NewDB(time.Minute)
	reg := metrics.NewRegistry()
	base := metrics.Labels{"service": "api", "backend": "b"}
	succ := base.With("classification", mesh.ClassSuccess)
	ctr := reg.Counter(mesh.MetricResponseTotal, succ)
	ctr.Add(0)
	db.Scrape(5*time.Second, reg)
	ctr.Add(100)
	db.Scrape(10*time.Second, reg)
	// The same instant scraped again (double-fire) must not double the rate:
	// equal timestamps are not "newer", so the duplicate is dropped.
	ctr.Add(100)
	db.Scrape(10*time.Second, reg)

	c := NewCollector(db)
	m := c.Collect(10*time.Second, "api", []string{"b"})["b"]
	if !m.HasTraffic || math.Abs(m.RPS-20) > 0.01 {
		t.Fatalf("RPS = %v (traffic=%v), want 20 (duplicate-timestamp scrape dropped)", m.RPS, m.HasTraffic)
	}
}

// fixedResets is a ResetSource reporting one splice time for every series.
type fixedResets struct {
	at time.Duration
	ok bool
}

func (f fixedResets) LastReset(match metrics.Labels) (time.Duration, bool) { return f.at, f.ok }

func TestCollectorResetSeen(t *testing.T) {
	db := timeseries.NewDB(time.Minute)
	seedMetrics(t, db, "api", "b", 100, 1, 0.05, 0)
	c := NewCollector(db)

	m := c.Collect(10*time.Second, "api", []string{"b"})["b"]
	if m.ResetSeen {
		t.Fatal("ResetSeen without a ResetSource")
	}

	c.Resets = fixedResets{at: 8 * time.Second, ok: true}
	m = c.Collect(10*time.Second, "api", []string{"b"})["b"]
	if !m.ResetSeen {
		t.Fatal("in-window reset not flagged")
	}
	// A reset older than the window no longer taints it.
	m = c.Collect(30*time.Second, "api", []string{"b"})["b"]
	if m.ResetSeen {
		t.Fatal("out-of-window reset still flagged")
	}
}
