package core

import (
	"math"
	"sort"
	"time"

	"l3/internal/ewma"
)

// WeightingConfig parameterises Algorithm 1 and the filters feeding it.
// The defaults are the paper's (§3.1, §4, §5.2.1).
type WeightingConfig struct {
	// Penalty is P, the latency cost of one failed request from the
	// client's perspective (default 600 ms per §5.2.1).
	Penalty time.Duration
	// DynamicPenalty derives P per backend from the measured round-trip
	// of its failed requests instead of the static constant — the paper's
	// future work ("determine the penalty factor P individually and
	// dynamically for each workload [from] continuous feedback about the
	// response time of unsuccessful requests", §7). The static Penalty
	// remains the filter's default until failures are observed.
	DynamicPenalty bool
	// FilterKind selects EWMA or PeakEWMA for the latency filter
	// (default EWMA, which §5.2.2 found slightly better).
	FilterKind ewma.Kind
	// InflightExponent is the power applied to (Rᵢ+1) in Equation 4
	// (default 2; exposed for the ablation the paper motivates when it
	// says squaring is a deliberate trade-off).
	InflightExponent float64
	// MinWeight floors Equation 4's output so weights stay positive and
	// finite (default 0.001). Algorithm 1 line 16's floor of one weight
	// unit applies to the *integer* TrafficSplit weight — the controller's
	// scaling already clamps every backend to at least 1 of ~1000 units —
	// so the natural-unit floor here is only a numerical guard: flooring
	// at 1 in 1/seconds units would pin a quarter of a healthy backend's
	// share onto a backend that answers nothing.
	MinWeight float64

	// Filter half-lives (§4): latency and in-flight 5 s; success rate and
	// RPS 10 s.
	LatencyHalfLife  time.Duration
	InflightHalfLife time.Duration
	SuccessHalfLife  time.Duration
	RPSHalfLife      time.Duration

	// Defaults (λ per filter, §4): 5 s latency, 100 % success, 0 RPS.
	DefaultLatency time.Duration
	DefaultSuccess float64
	DefaultRPS     float64

	// RelaxFraction is the per-update step toward the default when a
	// backend has no traffic (§4's "small increments"; default 0.1).
	RelaxFraction float64
}

// withDefaults fills zero fields with the paper's values.
func (c WeightingConfig) withDefaults() WeightingConfig {
	if c.Penalty <= 0 {
		c.Penalty = 600 * time.Millisecond
	}
	if c.FilterKind == 0 {
		c.FilterKind = ewma.KindEWMA
	}
	if c.InflightExponent <= 0 {
		c.InflightExponent = 2
	}
	if c.MinWeight <= 0 {
		c.MinWeight = 0.001
	}
	if c.LatencyHalfLife <= 0 {
		c.LatencyHalfLife = 5 * time.Second
	}
	if c.InflightHalfLife <= 0 {
		c.InflightHalfLife = 5 * time.Second
	}
	if c.SuccessHalfLife <= 0 {
		c.SuccessHalfLife = 10 * time.Second
	}
	if c.RPSHalfLife <= 0 {
		c.RPSHalfLife = 10 * time.Second
	}
	if c.DefaultLatency <= 0 {
		c.DefaultLatency = 5 * time.Second
	}
	if c.DefaultSuccess <= 0 {
		c.DefaultSuccess = 1
	}
	if c.RelaxFraction <= 0 {
		c.RelaxFraction = 0.1
	}
	return c
}

// backendFilters is the per-backend EWMA state of §3.1.
type backendFilters struct {
	latency  ewma.Filter // of the P99 of successful requests, seconds
	success  ewma.Filter // of the success rate
	rps      ewma.Filter // of requests/second
	inflight ewma.Filter // of in-flight requests
	failRTT  ewma.Filter // of failed-request latency (dynamic penalty)
}

// BackendView exposes a backend's current filtered state for
// instrumentation and tests.
type BackendView struct {
	Latency  float64
	Success  float64
	RPS      float64
	Inflight float64
	Weight   float64
}

// Weighter implements Algorithm 1: it folds fresh BackendMetrics into the
// per-backend filters and converts the filtered state into weights via
// Equations 3 and 4. Not safe for concurrent use.
type Weighter struct {
	cfg     WeightingConfig
	filters map[string]*backendFilters
	last    map[string]float64 // most recent weights, for instrumentation
}

// NewWeighter returns a Weighter with cfg (zero fields take the paper's
// defaults).
func NewWeighter(cfg WeightingConfig) *Weighter {
	return &Weighter{
		cfg:     cfg.withDefaults(),
		filters: make(map[string]*backendFilters),
		last:    make(map[string]float64),
	}
}

// Config returns the effective (defaulted) configuration.
func (w *Weighter) Config() WeightingConfig { return w.cfg }

func (w *Weighter) filtersFor(b string) *backendFilters {
	f, ok := w.filters[b]
	if !ok {
		c := w.cfg
		f = &backendFilters{
			latency:  ewma.NewFilter(c.FilterKind, c.LatencyHalfLife, c.DefaultLatency.Seconds()),
			success:  ewma.NewFilter(ewma.KindEWMA, c.SuccessHalfLife, c.DefaultSuccess),
			rps:      ewma.NewFilter(ewma.KindEWMA, c.RPSHalfLife, c.DefaultRPS),
			inflight: ewma.NewFilter(ewma.KindEWMA, c.InflightHalfLife, 0),
			failRTT:  ewma.NewFilter(ewma.KindEWMA, c.SuccessHalfLife, c.Penalty.Seconds()),
		}
		w.filters[b] = f
	}
	return f
}

// Update folds the collected metrics in and returns the weight of every
// backend present in m, per Algorithm 1. Backends without traffic relax
// toward their filter defaults (§4). Weights are in Equation 4's natural
// unit (1/seconds); callers scale them to integers for TrafficSplits.
func (w *Weighter) Update(now time.Duration, m map[string]BackendMetrics) map[string]float64 {
	names := make([]string, 0, len(m))
	for b := range m {
		names = append(names, b)
	}
	sort.Strings(names)

	out := make(map[string]float64, len(names))
	for _, b := range names {
		bm := m[b]
		f := w.filtersFor(b)
		if bm.HasTraffic {
			if bm.P99Valid {
				f.latency.Observe(now, bm.P99)
			}
			f.success.Observe(now, bm.SuccessRate)
			f.rps.Observe(now, bm.RPS)
			f.inflight.Observe(now, bm.Inflight)
			if w.cfg.DynamicPenalty && bm.FailureMeanValid {
				f.failRTT.Observe(now, bm.FailureMeanLatency)
			}
		} else {
			frac := w.cfg.RelaxFraction
			f.latency.Relax(now, frac)
			f.success.Relax(now, frac)
			f.rps.Relax(now, frac)
			f.inflight.Relax(now, frac)
			if w.cfg.DynamicPenalty {
				f.failRTT.Relax(now, frac)
			}
		}
		out[b] = w.weightOf(f)
		w.last[b] = out[b]
	}
	return out
}

// weightOf is Algorithm 1 lines 3-18 for one backend.
func (w *Weighter) weightOf(f *backendFilters) float64 {
	ls := f.latency.Value() // Lₛ, seconds
	rs := f.success.Value() // Rₛ
	rps := f.rps.Value()    // R_rps
	ri := 0.0               // Rᵢ, normalised in-flight
	if rps != 0 {
		ri = f.inflight.Value() / rps
	}
	if ri < 0 {
		ri = 0
	}

	// Equation 3: Lest = Lₛ + P·(1/Rₛ − 1); 1/Rₛ is the expected number of
	// tries until a success (geometric distribution). With DynamicPenalty,
	// P is the backend's measured failure round-trip instead of the
	// static constant.
	penalty := w.cfg.Penalty.Seconds()
	if w.cfg.DynamicPenalty {
		penalty = f.failRTT.Value()
	}
	lest := ls
	if rs > 0 {
		lest = ls + penalty*(1/rs-1)
	}
	if lest <= 0 {
		lest = 1e-6 // guard: weights stay finite
	}

	// Equation 4 with the configurable exponent (paper default 2).
	wb := 1 / (math.Pow(ri+1, w.cfg.InflightExponent) * lest)
	if wb < w.cfg.MinWeight {
		wb = w.cfg.MinWeight
	}
	return wb
}

// View returns the backend's current filtered state, for metrics export
// and tests. ok is false for a backend the weighter has never seen.
func (w *Weighter) View(b string) (BackendView, bool) {
	f, ok := w.filters[b]
	if !ok {
		return BackendView{}, false
	}
	return BackendView{
		Latency:  f.latency.Value(),
		Success:  f.success.Value(),
		RPS:      f.rps.Value(),
		Inflight: f.inflight.Value(),
		Weight:   w.last[b],
	}, true
}

// Forget drops all filter state of a backend (used when a TrafficSplit
// backend is removed).
func (w *Weighter) Forget(b string) {
	delete(w.filters, b)
	delete(w.last, b)
}
