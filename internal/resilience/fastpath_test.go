package resilience

import (
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/wan"
)

// The resilience layer's allocation contract, pinned per ISSUE 4:
//
//   - pass-through (no policy applied): 0 allocs/op — the layer adds one
//     pooled op + one pooled attempt on top of mesh.Call's own 0-alloc
//     lifecycle, all recycled;
//   - budgeted-retry path (deadline + retries, failures forcing backoff):
//     0 allocs/op steady state — backoff/deadline timers are caller-owned
//     and rebound in place (sim.Engine.AtTimer), attempts pooled;
//   - hedged path (every request hedges): 0 allocs/op steady state.
//
// Any regression that reintroduces per-request closures, Timer handles or
// map writes shows up here as a non-zero count.

func newAllocRig(t *testing.T, profile backend.Profile) (*sim.Engine, *Client) {
	t.Helper()
	e := sim.NewEngine()
	m := mesh.New(e, sim.NewRand(1), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	if _, err := m.AddService("api"); err != nil {
		t.Fatal(err)
	}
	for _, b := range []struct{ name, cluster string }{
		{"api-c1", "cluster-1"}, {"api-c2", "cluster-1"},
	} {
		if _, err := m.AddBackend("api", b.name, b.cluster, backend.Config{}, profile); err != nil {
			t.Fatal(err)
		}
	}
	return e, NewClient(e, sim.NewRand(2), m)
}

func measure(t *testing.T, e *sim.Engine, c *Client, path string, want float64) {
	t.Helper()
	completed := 0
	onDone := func(Result) { completed++ }
	issue := func() {
		if err := c.Call("cluster-1", "api", onDone); err != nil {
			t.Fatal(err)
		}
		e.Run()
	}
	for i := 0; i < 8; i++ {
		issue() // warm pools, route caches, series and the event heap
	}
	if allocs := testing.AllocsPerRun(200, issue); allocs != want {
		t.Fatalf("%s path allocates %.1f objects per request, pinned at %.0f", path, allocs, want)
	}
	if completed == 0 {
		t.Fatal("no requests completed")
	}
}

func TestDisabledPathAllocationFree(t *testing.T) {
	ok := func(time.Duration, *sim.Rand) (time.Duration, bool) { return time.Millisecond, true }
	e, c := newAllocRig(t, ok)
	measure(t, e, c, "pass-through", 0)
}

func TestBudgetedRetryPathAllocationFree(t *testing.T) {
	// Fail every other request so the retry/backoff machinery exercises
	// on a steady stream of both outcomes.
	n := 0
	flaky := func(time.Duration, *sim.Rand) (time.Duration, bool) {
		n++
		return time.Millisecond, n%2 == 0
	}
	e, c := newAllocRig(t, flaky)
	if err := c.Apply("api", Policy{
		Deadline: time.Second,
		Retry: RetryConfig{
			MaxAttempts: 3, Backoff: 5 * time.Millisecond, Jitter: 0.2,
			BudgetRatio: 1, AttemptTimeout: 50 * time.Millisecond,
		},
	}); err != nil {
		t.Fatal(err)
	}
	measure(t, e, c, "budgeted-retry", 0)
}

func TestHedgedPathAllocationFree(t *testing.T) {
	ok := func(time.Duration, *sim.Rand) (time.Duration, bool) { return 20 * time.Millisecond, true }
	e, c := newAllocRig(t, ok)
	// Fixed 5ms hedge delay: every 20ms request hedges, the two attempts
	// race, and the loser settles through the duplicate path.
	if err := c.Apply("api", Policy{
		Hedge: HedgeConfig{Delay: 5 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	measure(t, e, c, "hedged", 0)
}

func TestBreakerPathAllocationFree(t *testing.T) {
	// Failing backends keep the breaker's eject/restore cycle and the
	// picker filter hot.
	n := 0
	flaky := func(time.Duration, *sim.Rand) (time.Duration, bool) {
		n++
		return time.Millisecond, n%4 != 0
	}
	e, c := newAllocRig(t, flaky)
	if err := c.Apply("api", Policy{
		Breaker: BreakerConfig{ConsecutiveFailures: 2, BaseEjection: 10 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	measure(t, e, c, "breaker", 0)
}
