package resilience

import (
	"time"

	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
)

// Breaker is a per-backend circuit breaker / outlier ejector in the style
// of Envoy's outlier detection: a backend that fails ConsecutiveFailures
// responses in a row is ejected from load balancing for an exponentially
// growing window, subject to a max-ejection-percent guard so a correlated
// fault (a WAN partition failing every cross-cluster response at once) can
// never eject all backends of a service.
//
// Compared with internal/health's active probing, the breaker reacts on
// the data path itself: ejection latency is a handful of in-flight
// requests rather than FailureThreshold probe intervals. The two compose —
// the breaker filters whatever picker is installed, including a health
// FailoverPicker — which figure R3 quantifies.
//
// Restores are lazy: an expired window is noticed the next time the
// backend is consulted (every pick filters over all backends, so in
// practice the next request after expiry). Like the rest of the layer, a
// Breaker is single-threaded on its engine.
type Breaker struct {
	engine  *sim.Engine
	cfg     BreakerConfig
	states  map[string]*breakerState
	names   []string // registration order, for deterministic inspection
	ejected int
	mDenied *metrics.Counter
}

type breakerState struct {
	name        string
	consecFails int
	ejections   int // lifetime count; sizes the exponential window
	ejected     bool
	until       time.Duration
	mEject      *metrics.Counter
	mRestore    *metrics.Counter
}

// NewBreaker builds a breaker over a fixed backend set. cfg must already
// have defaults applied (Policy.withDefaults); reg may be nil for tests.
func NewBreaker(engine *sim.Engine, cfg BreakerConfig, service string, backends []string, reg *metrics.Registry) *Breaker {
	b := &Breaker{
		engine: engine,
		cfg:    cfg,
		states: make(map[string]*breakerState, len(backends)),
		names:  append([]string(nil), backends...),
	}
	if reg != nil {
		b.mDenied = reg.Counter(MetricBreakerDeniedTotal, metrics.Labels{"service": service})
	}
	for _, name := range backends {
		st := &breakerState{name: name}
		if reg != nil {
			st.mEject = reg.Counter(MetricBreakerEjectionsTotal, metrics.Labels{"service": service, "backend": name})
			st.mRestore = reg.Counter(MetricBreakerRestoresTotal, metrics.Labels{"service": service, "backend": name})
		}
		b.states[name] = st
	}
	return b
}

// Record feeds one response outcome into the breaker. Unknown backends
// (probe synthetics, backends added after Apply) are ignored.
func (b *Breaker) Record(now time.Duration, backend string, success bool) {
	st, ok := b.states[backend]
	if !ok {
		return
	}
	b.maybeRestore(st, now)
	if success {
		st.consecFails = 0
		return
	}
	st.consecFails++
	if st.ejected || st.consecFails < b.cfg.ConsecutiveFailures {
		return
	}
	if !b.canEject() {
		// At the max-ejection-percent cap: suppress, and restart the
		// consecutive count so the backend must earn ejection afresh
		// once capacity frees up.
		st.consecFails = 0
		if b.mDenied != nil {
			b.mDenied.Inc()
		}
		return
	}
	st.ejected = true
	st.until = now + b.window(st.ejections)
	st.ejections++
	st.consecFails = 0
	b.ejected++
	if st.mEject != nil {
		st.mEject.Inc()
	}
}

// canEject applies the max-ejection-percent guard: one more ejection is
// allowed while the ejected fraction stays within the cap, and the first
// ejection is always allowed (Envoy's "at least one host" rule).
func (b *Breaker) canEject() bool {
	if b.ejected == 0 {
		return true
	}
	return float64(b.ejected+1) <= b.cfg.MaxEjectionPercent*float64(len(b.states))
}

// window is the ejection duration for a backend's nth ejection:
// BaseEjection·2ⁿ capped at MaxEjection.
func (b *Breaker) window(nth int) time.Duration {
	w := b.cfg.BaseEjection
	for i := 0; i < nth; i++ {
		w *= 2
		if w >= b.cfg.MaxEjection {
			return b.cfg.MaxEjection
		}
	}
	if w > b.cfg.MaxEjection {
		w = b.cfg.MaxEjection
	}
	return w
}

func (b *Breaker) maybeRestore(st *breakerState, now time.Duration) {
	if st.ejected && now >= st.until {
		st.ejected = false
		st.consecFails = 0
		b.ejected--
		if st.mRestore != nil {
			st.mRestore.Inc()
		}
	}
}

// Allowed reports whether a backend is currently in rotation, restoring it
// first if its ejection window has expired. Unknown backends are allowed.
func (b *Breaker) Allowed(now time.Duration, backend string) bool {
	st, ok := b.states[backend]
	if !ok {
		return true
	}
	b.maybeRestore(st, now)
	return !st.ejected
}

// EjectedCount returns how many backends are currently ejected, after
// lazily restoring any whose window has expired.
func (b *Breaker) EjectedCount(now time.Duration) int {
	for _, name := range b.names {
		b.maybeRestore(b.states[name], now)
	}
	return b.ejected
}

// breakerPicker filters the ejected backends out of every pick and
// delegates to the strategy that was installed when the policy was
// applied, forwarding per-response feedback to it. The filter fails open:
// if every backend is ejected (possible only transiently, since the
// ejection-percent guard blocks ejecting the last ones) the unfiltered
// set is used. The allowed slice is a reusable scratch buffer, so
// filtering allocates nothing in the steady state.
type breakerPicker struct {
	breaker *Breaker
	inner   mesh.Picker // nil means the mesh's uniform-random fallback
	rng     *sim.Rand
	scratch []*mesh.Backend
}

func (p *breakerPicker) Pick(now time.Duration, src, service string, backends []*mesh.Backend) *mesh.Backend {
	allowed := p.scratch[:0]
	for _, b := range backends {
		if p.breaker.Allowed(now, b.Name) {
			allowed = append(allowed, b)
		}
	}
	p.scratch = allowed
	if len(allowed) == 0 {
		allowed = backends
	}
	if p.inner == nil {
		return allowed[p.rng.IntN(len(allowed))]
	}
	return p.inner.Pick(now, src, service, allowed)
}

// Observe forwards response feedback to the wrapped strategy, preserving
// per-request balancers (P2C, PeakEWMA) under the filter.
func (p *breakerPicker) Observe(now time.Duration, src, backendName string, latency time.Duration, success bool) {
	if obs, ok := p.inner.(mesh.Observer); ok {
		obs.Observe(now, src, backendName, latency, success)
	}
}
