package resilience

import (
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/wan"
)

// scriptServer serves with whatever latency/outcome its fields hold at
// Serve time, so tests can reshape backend behaviour mid-run.
type scriptServer struct {
	engine  *sim.Engine
	latency time.Duration
	ok      bool
	served  int
}

func (s *scriptServer) Serve(done func(backend.Result)) {
	s.served++
	lat, ok := s.latency, s.ok
	s.engine.ScheduleAfter(lat, func() { done(backend.Result{Latency: lat, Success: ok}) })
}

type testRig struct {
	engine *sim.Engine
	mesh   *mesh.Mesh
	client *Client
	reg    *metrics.Registry
}

func newRig(t *testing.T, servers map[string]*scriptServer) *testRig {
	t.Helper()
	e := sim.NewEngine()
	reg := metrics.NewRegistry()
	m := mesh.New(e, sim.NewRand(1), wan.New(wan.DefaultConfig()), reg)
	if _, err := m.AddService("api"); err != nil {
		t.Fatal(err)
	}
	for name, srv := range servers {
		srv.engine = e
		if _, err := m.AddServerBackend("api", name, "cluster-1", srv); err != nil {
			t.Fatal(err)
		}
	}
	return &testRig{engine: e, mesh: m, client: NewClient(e, sim.NewRand(2), m), reg: reg}
}

func counterValue(t *testing.T, reg *metrics.Registry, name string, labels metrics.Labels) float64 {
	t.Helper()
	return reg.Counter(name, labels).Value()
}

func TestPassThroughWithoutPolicy(t *testing.T) {
	rig := newRig(t, map[string]*scriptServer{"b1": {latency: 10 * time.Millisecond, ok: true}})
	var res Result
	if err := rig.client.Call("cluster-1", "api", func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	rig.engine.Run()
	if !res.Success || res.Attempts != 1 || res.Hedged || res.DeadlineExceeded {
		t.Fatalf("pass-through result = %+v", res)
	}
	// 10ms exec + 2×500µs local proxy hops.
	if res.Latency != 11*time.Millisecond {
		t.Fatalf("latency = %v, want 11ms", res.Latency)
	}
}

func TestDeadlineFailsSlowRequestExactlyOnce(t *testing.T) {
	rig := newRig(t, map[string]*scriptServer{"b1": {latency: 200 * time.Millisecond, ok: true}})
	if err := rig.client.Apply("api", Policy{Deadline: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	fired := 0
	var res Result
	var at time.Duration
	_ = rig.client.Call("cluster-1", "api", func(r Result) {
		fired++
		res, at = r, rig.engine.Now()
	})
	rig.engine.Run()
	if fired != 1 {
		t.Fatalf("done fired %d times, want exactly once", fired)
	}
	if res.Success || !res.DeadlineExceeded {
		t.Fatalf("result = %+v, want deadline failure", res)
	}
	if at != 50*time.Millisecond || res.Latency != 50*time.Millisecond {
		t.Fatalf("failed at %v with latency %v, want exactly the 50ms deadline", at, res.Latency)
	}
	labels := metrics.Labels{"service": "api"}
	if v := counterValue(t, rig.reg, MetricDeadlineExceededTotal, labels); v != 1 {
		t.Fatalf("deadline counter = %v, want 1", v)
	}
	// The straggler response (at ~201ms) lands after the op settled and
	// must be accounted as duplicate load, not delivered.
	if v := counterValue(t, rig.reg, MetricDuplicatesTotal, labels); v != 1 {
		t.Fatalf("duplicates counter = %v, want 1", v)
	}
}

func TestCallWithinInheritsTighterDeadline(t *testing.T) {
	rig := newRig(t, map[string]*scriptServer{"b1": {latency: 200 * time.Millisecond, ok: true}})
	if err := rig.client.Apply("api", Policy{Deadline: time.Second}); err != nil {
		t.Fatal(err)
	}
	var res Result
	// The enclosing request has only 30ms of budget left; the service's
	// own 1s deadline must not stretch it.
	_ = rig.client.CallWithin(30*time.Millisecond, "cluster-1", "api", func(r Result) { res = r })
	rig.engine.Run()
	if !res.DeadlineExceeded || res.Latency != 30*time.Millisecond {
		t.Fatalf("result = %+v, want failure at the inherited 30ms deadline", res)
	}
}

func TestRetryStopsWhenDeadlineCannotBeMet(t *testing.T) {
	srv := &scriptServer{latency: 5 * time.Millisecond, ok: false}
	rig := newRig(t, map[string]*scriptServer{"b1": srv})
	// First failure lands at ~6ms; the next backoff (100ms, no jitter)
	// would fire past the 50ms deadline, so the client must report the
	// failure immediately instead of burning the remaining budget.
	err := rig.client.Apply("api", Policy{
		Deadline: 50 * time.Millisecond,
		Retry:    RetryConfig{MaxAttempts: 3, Backoff: 100 * time.Millisecond, Jitter: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	var at time.Duration
	_ = rig.client.Call("cluster-1", "api", func(r Result) { res, at = r, rig.engine.Now() })
	rig.engine.Run()
	if res.Success || res.DeadlineExceeded {
		t.Fatalf("result = %+v, want plain failure (not deadline-fired)", res)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (retry pointless past deadline)", res.Attempts)
	}
	if at != 6*time.Millisecond {
		t.Fatalf("reported at %v, want immediately at first failure (6ms)", at)
	}
}

func TestRetriesRecoverAfterTransientFailure(t *testing.T) {
	srv := &scriptServer{latency: 2 * time.Millisecond, ok: false}
	rig := newRig(t, map[string]*scriptServer{"b1": srv})
	err := rig.client.Apply("api", Policy{
		Retry: RetryConfig{MaxAttempts: 3, Backoff: 10 * time.Millisecond, Jitter: -1, BudgetRatio: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Heal the backend after the first failure.
	rig.engine.ScheduleAfter(5*time.Millisecond, func() { srv.ok = true })
	var res Result
	_ = rig.client.Call("cluster-1", "api", func(r Result) { res = r })
	rig.engine.Run()
	if !res.Success || res.Attempts != 2 {
		t.Fatalf("result = %+v, want success on attempt 2", res)
	}
	if v := counterValue(t, rig.reg, MetricRetriesTotal, metrics.Labels{"service": "api"}); v != 1 {
		t.Fatalf("retries counter = %v, want 1", v)
	}
}

func TestRetryBudgetBoundsRetryRatio(t *testing.T) {
	srv := &scriptServer{latency: time.Millisecond, ok: false}
	rig := newRig(t, map[string]*scriptServer{"b1": srv})
	const ratio, burst = 0.1, 5.0
	err := rig.client.Apply("api", Policy{
		Retry: RetryConfig{MaxAttempts: 3, Backoff: time.Millisecond, Jitter: -1, BudgetRatio: ratio, BudgetBurst: burst},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		rig.engine.ScheduleAfter(time.Duration(i)*10*time.Millisecond, func() {
			_ = rig.client.Call("cluster-1", "api", func(Result) {})
		})
	}
	rig.engine.Run()
	labels := metrics.Labels{"service": "api"}
	retries := counterValue(t, rig.reg, MetricRetriesTotal, labels)
	max := ratio*n + burst
	if retries > max {
		t.Fatalf("retries = %v for %d requests, budget allows at most %v", retries, n, max)
	}
	if retries < ratio*n/2 {
		t.Fatalf("retries = %v, suspiciously below the earned budget (~%v)", retries, ratio*n)
	}
	if v := counterValue(t, rig.reg, MetricBudgetExhaustedTotal, labels); v == 0 {
		t.Fatal("budget never reported exhaustion under sustained failure")
	}

	// Naive configuration (ratio 0): every request retries to MaxAttempts.
	rig2 := newRig(t, map[string]*scriptServer{"b1": {latency: time.Millisecond, ok: false}})
	if err := rig2.client.Apply("api", Policy{
		Retry: RetryConfig{MaxAttempts: 3, Backoff: time.Millisecond, Jitter: -1},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rig2.engine.ScheduleAfter(time.Duration(i)*10*time.Millisecond, func() {
			_ = rig2.client.Call("cluster-1", "api", func(Result) {})
		})
	}
	rig2.engine.Run()
	if v := counterValue(t, rig2.reg, MetricRetriesTotal, labels); v != 100 {
		t.Fatalf("naive retries = %v, want 50×2 = 100", v)
	}
}

func TestHedgeWinsOverSlowPrimary(t *testing.T) {
	srv := &scriptServer{latency: 300 * time.Millisecond, ok: true}
	rig := newRig(t, map[string]*scriptServer{"b1": srv})
	err := rig.client.Apply("api", Policy{Hedge: HedgeConfig{Delay: 50 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	// The primary (launched at t=0) is stuck at 300ms; by hedge time the
	// backend has recovered, so the hedge returns fast and wins.
	rig.engine.ScheduleAfter(20*time.Millisecond, func() { srv.latency = 10 * time.Millisecond })
	var res Result
	_ = rig.client.Call("cluster-1", "api", func(r Result) { res = r })
	rig.engine.Run()
	if !res.Success || !res.Hedged || res.Attempts != 2 {
		t.Fatalf("result = %+v, want hedged success with 2 attempts", res)
	}
	// Hedge launches at 50ms, serves 10ms + 1ms hops → 61ms total.
	if res.Latency != 61*time.Millisecond {
		t.Fatalf("latency = %v, want 61ms (hedge path), not 301ms (primary)", res.Latency)
	}
	labels := metrics.Labels{"service": "api"}
	if v := counterValue(t, rig.reg, MetricHedgesTotal, labels); v != 1 {
		t.Fatalf("hedges counter = %v, want 1", v)
	}
	if v := counterValue(t, rig.reg, MetricDuplicatesTotal, labels); v != 1 {
		t.Fatalf("duplicates counter = %v, want 1 (the losing primary)", v)
	}
	if srv.served != 2 {
		t.Fatalf("backend served %d requests, want 2", srv.served)
	}
}

func TestHedgeLearnsPercentileThreshold(t *testing.T) {
	srv := &scriptServer{latency: 10 * time.Millisecond, ok: true}
	rig := newRig(t, map[string]*scriptServer{"b1": srv})
	err := rig.client.Apply("api", Policy{Hedge: HedgeConfig{Percentile: 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the latency tracker past the recompute threshold, then make
	// the backend slow: subsequent requests must hedge at ~p95 (≈11ms
	// client-side) instead of waiting the full 500ms.
	for i := 0; i < 100; i++ {
		rig.engine.ScheduleAfter(time.Duration(i)*20*time.Millisecond, func() {
			_ = rig.client.Call("cluster-1", "api", func(Result) {})
		})
	}
	rig.engine.RunUntil(3 * time.Second)
	srv.latency = 500 * time.Millisecond
	var res Result
	_ = rig.client.Call("cluster-1", "api", func(r Result) { res = r })
	// Heal right after the primary is committed to its 500ms, so the
	// hedge (due at ~p95 ≈ 11ms) lands on a fast backend.
	rig.engine.ScheduleAfter(2*time.Millisecond, func() { srv.latency = 10 * time.Millisecond })
	rig.engine.Run()
	if !res.Hedged || !res.Success {
		t.Fatalf("result = %+v, want hedged success", res)
	}
	if res.Latency >= 100*time.Millisecond {
		t.Fatalf("latency = %v, want well under the 501ms primary (hedge at learned p95)", res.Latency)
	}
}

func TestHedgeSpendsBudget(t *testing.T) {
	srv := &scriptServer{latency: 300 * time.Millisecond, ok: true}
	rig := newRig(t, map[string]*scriptServer{"b1": srv})
	err := rig.client.Apply("api", Policy{
		Retry: RetryConfig{MaxAttempts: 2, Backoff: time.Millisecond, Jitter: -1, BudgetRatio: 0.1, BudgetBurst: 1},
		Hedge: HedgeConfig{Delay: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two concurrent slow requests, one token in the bucket: only the
	// first can hedge, the second is denied by the budget.
	for i := 0; i < 2; i++ {
		_ = rig.client.Call("cluster-1", "api", func(Result) {})
	}
	rig.engine.Run()
	labels := metrics.Labels{"service": "api"}
	if v := counterValue(t, rig.reg, MetricHedgesTotal, labels); v != 1 {
		t.Fatalf("hedges = %v, want 1 (second denied by budget)", v)
	}
	if v := counterValue(t, rig.reg, MetricBudgetExhaustedTotal, labels); v != 1 {
		t.Fatalf("budget exhaustions = %v, want 1", v)
	}
}

func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy("deadline=1s,retries=3,backoff=10ms,factor=1.5,jitter=0.3,budget=0.2,burst=20,hedge=p95,hedgemin=5ms,breaker=5,ejection=5s,maxejection=40s,maxejectpct=0.4")
	if err != nil {
		t.Fatal(err)
	}
	want := Policy{
		Deadline: time.Second,
		Retry:    RetryConfig{MaxAttempts: 3, Backoff: 10 * time.Millisecond, BackoffFactor: 1.5, Jitter: 0.3, BudgetRatio: 0.2, BudgetBurst: 20},
		Hedge:    HedgeConfig{Percentile: 0.95, MinDelay: 5 * time.Millisecond},
		Breaker:  BreakerConfig{ConsecutiveFailures: 5, BaseEjection: 5 * time.Second, MaxEjection: 40 * time.Second, MaxEjectionPercent: 0.4},
	}
	if p != want {
		t.Fatalf("ParsePolicy = %+v, want %+v", p, want)
	}
	if _, err := ParsePolicy("hedge=75ms"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"nope=1", "deadline", "retries=x", "hedge=pxx"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Fatalf("ParsePolicy(%q) accepted", bad)
		}
	}
}

func TestPolicyStringRoundTrips(t *testing.T) {
	p := Policy{
		Deadline: time.Second,
		Retry:    RetryConfig{MaxAttempts: 3, Backoff: 10 * time.Millisecond, BudgetRatio: 0.2},
		Hedge:    HedgeConfig{Percentile: 0.95},
		Breaker:  BreakerConfig{ConsecutiveFailures: 5},
	}
	back, err := ParsePolicy(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round trip %q = %+v, want %+v", p.String(), back, p)
	}
	if (Policy{}).String() != "off" {
		t.Fatalf("zero policy String = %q, want off", (Policy{}).String())
	}
}

func TestApplyUnknownServiceErrors(t *testing.T) {
	rig := newRig(t, map[string]*scriptServer{"b1": {latency: time.Millisecond, ok: true}})
	if err := rig.client.Apply("nope", Policy{Deadline: time.Second}); err == nil {
		t.Fatal("Apply for unknown service accepted")
	}
}

func TestDeterministicAcrossIdenticalRuns(t *testing.T) {
	run := func() (Result, float64) {
		srv := &scriptServer{latency: 2 * time.Millisecond, ok: false}
		rig := newRig(t, map[string]*scriptServer{"b1": srv})
		_ = rig.client.Apply("api", Policy{
			Deadline: 80 * time.Millisecond,
			Retry:    RetryConfig{MaxAttempts: 4, Backoff: 5 * time.Millisecond, Jitter: 0.4, BudgetRatio: 0.5},
		})
		rig.engine.ScheduleAfter(10*time.Millisecond, func() { srv.ok = true })
		var last Result
		for i := 0; i < 20; i++ {
			rig.engine.ScheduleAfter(time.Duration(i)*3*time.Millisecond, func() {
				_ = rig.client.Call("cluster-1", "api", func(r Result) { last = r })
			})
		}
		rig.engine.Run()
		return last, counterValue(t, rig.reg, MetricRetriesTotal, metrics.Labels{"service": "api"})
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 || c1 != c2 {
		t.Fatalf("identical seeded runs diverged: %+v/%v vs %+v/%v", r1, c1, r2, c2)
	}
}

func TestAttemptTimeoutAbandonsSlowAttemptsAndRetries(t *testing.T) {
	// 100ms backend behind a 20ms per-try timeout: every attempt is
	// abandoned and retried until MaxAttempts, and the logical request
	// fails long before the first response would have arrived. All three
	// abandoned responses land as duplicates — the wasted work the server
	// still performed.
	srv := &scriptServer{latency: 100 * time.Millisecond, ok: true}
	rig := newRig(t, map[string]*scriptServer{"b1": srv})
	if err := rig.client.Apply("api", Policy{
		Retry: RetryConfig{MaxAttempts: 3, AttemptTimeout: 20 * time.Millisecond, Backoff: 5 * time.Millisecond, Jitter: -1},
	}); err != nil {
		t.Fatal(err)
	}
	var res Result
	fired := 0
	if err := rig.client.Call("cluster-1", "api", func(r Result) { fired++; res = r }); err != nil {
		t.Fatal(err)
	}
	rig.engine.Run()
	if fired != 1 {
		t.Fatalf("done fired %d times", fired)
	}
	if res.Success || res.Attempts != 3 {
		t.Fatalf("result = %+v, want 3 abandoned attempts and failure", res)
	}
	// Timeouts at 20/45/75ms (backoff 5ms doubling to 10ms between), final
	// failure at the third timeout.
	if res.Latency != 75*time.Millisecond {
		t.Fatalf("latency = %v, want 75ms", res.Latency)
	}
	if srv.served != 3 {
		t.Fatalf("server saw %d attempts, want 3 (abandoned work still served)", srv.served)
	}
	if d := counterValue(t, rig.reg, MetricDuplicatesTotal, metrics.Labels{"service": "api"}); d != 3 {
		t.Fatalf("duplicates = %v, want 3 late responses", d)
	}
}

func TestAttemptTimeoutRetrySucceedsAfterHeal(t *testing.T) {
	srv := &scriptServer{latency: 100 * time.Millisecond, ok: true}
	rig := newRig(t, map[string]*scriptServer{"b1": srv})
	if err := rig.client.Apply("api", Policy{
		Retry: RetryConfig{MaxAttempts: 3, AttemptTimeout: 20 * time.Millisecond, Backoff: 5 * time.Millisecond, Jitter: -1},
	}); err != nil {
		t.Fatal(err)
	}
	// Heal before the retry launches: the second attempt answers fast.
	rig.engine.After(10*time.Millisecond, func() { srv.latency = time.Millisecond })
	var res Result
	if err := rig.client.Call("cluster-1", "api", func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	rig.engine.Run()
	if !res.Success || res.Attempts != 2 {
		t.Fatalf("result = %+v, want success on the second attempt", res)
	}
	// Abandoned at 20ms, retry at 25ms, 1ms exec + 1ms hops.
	if res.Latency != 27*time.Millisecond {
		t.Fatalf("latency = %v, want 27ms", res.Latency)
	}
	if d := counterValue(t, rig.reg, MetricDuplicatesTotal, metrics.Labels{"service": "api"}); d != 1 {
		t.Fatalf("duplicates = %v, want 1 (the abandoned first attempt)", d)
	}
}

func TestParsePolicyPerTryTimeout(t *testing.T) {
	p, err := ParsePolicy("retries=3,pertry=250ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Retry.AttemptTimeout != 250*time.Millisecond {
		t.Fatalf("AttemptTimeout = %v", p.Retry.AttemptTimeout)
	}
	if s := p.String(); s != "retries=3,pertry=250ms" {
		t.Fatalf("String() = %q", s)
	}
}
