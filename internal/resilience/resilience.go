// Package resilience is the data-plane resilience layer: a per-service
// policy that wraps mesh.Call with request deadlines, budgeted retries,
// hedged requests and a per-backend circuit breaker. The paper's own
// benchmarks "did not perform retries for simplicity" (§5.2.1); this layer
// is what lets the repository test that conjecture honestly — and what
// keeps the client side from self-inflicting the tail latency and retry
// storms that performance-aware balancing is supposed to remove.
//
// The four mechanisms compose in a fixed order per logical request:
//
//		deadline → retry budget → hedge → circuit breaker → picker
//
//	  - Deadlines bound the whole logical request (all attempts plus
//	    backoff). They propagate through nested calls via CallWithin and
//	    cancel pending backoff/hedge work through the engine's seq-guarded
//	    timers when they fire.
//	  - Retries are paid for from a token-bucket budget (Finagle/Linkerd
//	    style): every logical request deposits BudgetRatio tokens, every
//	    retry withdraws one, so the steady-state retry ratio is bounded by
//	    the ratio and a saturated backend cannot amplify load into a retry
//	    storm. Backoff is exponential with seeded jitter, so clients of a
//	    failed backend do not retry in lockstep.
//	  - Hedges launch a second attempt once the first has been in flight
//	    longer than a configured latency percentile of the service (learned
//	    online from successful responses); the first response wins and the
//	    loser is recorded as duplicate load. Hedges spend retry-budget
//	    tokens, bounding their duplicate load the same way.
//	  - The circuit breaker ejects a backend after consecutive failures for
//	    an exponentially growing window, capped by a max-ejection-percent
//	    guard so a correlated fault can never eject every backend of a
//	    service. Ejection state filters the service's picker (composing
//	    under whatever strategy — including health-check failover — is
//	    installed).
//
// The layer preserves the mesh's zero-allocation fast path: policies
// resolve to per-service state once (mirroring mesh's routeStats), request
// and attempt state recycle through free lists with pre-bound callbacks,
// and timers are caller-owned and rebound in place (sim.Engine.AtTimer).
// With an empty policy the layer is a pass-through that stays at zero
// steady-state allocations per request.
package resilience

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"l3/internal/histogram"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
)

// Metric families the layer exports into the mesh's registry, so retry and
// breaker activity can be plotted next to the data-plane series.
const (
	// MetricRequestsTotal counts logical requests entering the layer, per
	// service.
	MetricRequestsTotal = "resilience_requests_total"
	// MetricRetriesTotal counts retry attempts actually launched.
	MetricRetriesTotal = "resilience_retries_total"
	// MetricHedgesTotal counts hedge attempts launched.
	MetricHedgesTotal = "resilience_hedges_total"
	// MetricBudgetExhaustedTotal counts retries/hedges denied by an empty
	// token bucket — the storms that did not happen.
	MetricBudgetExhaustedTotal = "resilience_budget_exhausted_total"
	// MetricDeadlineExceededTotal counts logical requests failed by their
	// deadline.
	MetricDeadlineExceededTotal = "resilience_deadline_exceeded_total"
	// MetricDuplicatesTotal counts responses that arrived after their
	// logical request had already completed (hedge losers, post-deadline
	// stragglers) — the duplicate-load cost of hedging and deadlines.
	MetricDuplicatesTotal = "resilience_duplicates_total"
	// MetricBreakerEjectionsTotal counts breaker ejections, per backend.
	MetricBreakerEjectionsTotal = "resilience_breaker_ejections_total"
	// MetricBreakerRestoresTotal counts ejection windows expiring, per
	// backend.
	MetricBreakerRestoresTotal = "resilience_breaker_restores_total"
	// MetricBreakerDeniedTotal counts ejections suppressed by the
	// max-ejection-percent guard.
	MetricBreakerDeniedTotal = "resilience_breaker_denied_total"
)

// RetryConfig parameterises budgeted retries.
type RetryConfig struct {
	// MaxAttempts bounds total tries per logical request, the first
	// included (<= 1 disables retries).
	MaxAttempts int
	// AttemptTimeout abandons an attempt still unanswered after this long
	// and treats it as failed (Envoy's per_try_timeout); 0 disables. The
	// abandoned attempt is NOT cancelled server-side — its work stays in
	// the backend's queue and its eventual response counts as a
	// duplicate. That wasted work is precisely what lets unbudgeted
	// retries turn a transient overload metastable (figure R1): every
	// timed-out attempt burns capacity and adds a retry on top. When
	// hedging is also on, the timer tracks the newest attempt in flight.
	AttemptTimeout time.Duration
	// Backoff is the wait before the first retry (default 10 ms).
	Backoff time.Duration
	// BackoffFactor multiplies the wait per further retry (default 2).
	BackoffFactor float64
	// Jitter spreads each backoff uniformly over ±Jitter of its nominal
	// value (default 0.2; negative disables), so retries decorrelate.
	Jitter float64
	// BudgetRatio is the token-bucket earn rate: every logical request
	// deposits this many tokens and every retry or hedge withdraws one,
	// bounding the steady-state retry ratio. 0 disables the budget —
	// naive unbounded retries, kept for the R1 comparison.
	BudgetRatio float64
	// BudgetBurst caps the bucket (default max(10, 100×BudgetRatio));
	// the bucket starts full so cold starts can retry.
	BudgetBurst float64
}

// HedgeConfig parameterises hedged requests.
type HedgeConfig struct {
	// Percentile of the service's observed success latency at which a
	// hedge launches (e.g. 0.95). 0 disables hedging unless Delay is set.
	Percentile float64
	// Delay is a fixed hedge delay overriding the learned percentile.
	Delay time.Duration
	// MinDelay floors the learned delay (default 1 ms) so a fast service
	// cannot hedge every request.
	MinDelay time.Duration
}

// BreakerConfig parameterises the per-backend circuit breaker / outlier
// ejector, Envoy-outlier-detection flavoured.
type BreakerConfig struct {
	// ConsecutiveFailures ejects a backend after this many consecutive
	// failed responses (0 disables the breaker).
	ConsecutiveFailures int
	// BaseEjection is the first ejection window (default 5 s); each
	// further ejection of the same backend doubles it.
	BaseEjection time.Duration
	// MaxEjection caps the exponentially growing window (default 80 s).
	MaxEjection time.Duration
	// MaxEjectionPercent bounds the fraction of a service's backends
	// ejected at once (default 0.5); at least one ejection is always
	// allowed. A correlated fault therefore can never eject every
	// backend.
	MaxEjectionPercent float64
}

// Policy is the per-service resilience policy. The zero value disables
// every mechanism and the layer becomes a pass-through.
type Policy struct {
	// Deadline bounds each logical request (all attempts plus backoff);
	// 0 means none. Nested calls inherit the tighter of this and the
	// caller's remaining budget (CallWithin).
	Deadline time.Duration
	Retry    RetryConfig
	Hedge    HedgeConfig
	Breaker  BreakerConfig
}

// Enabled reports whether any mechanism is active.
func (p Policy) Enabled() bool {
	return p.Deadline > 0 || p.Retry.MaxAttempts > 1 || p.hedgeOn() || p.Breaker.ConsecutiveFailures > 0
}

func (p Policy) hedgeOn() bool { return p.Hedge.Percentile > 0 || p.Hedge.Delay > 0 }

func (p Policy) withDefaults() Policy {
	if p.Retry.MaxAttempts > 1 {
		if p.Retry.Backoff <= 0 {
			p.Retry.Backoff = 10 * time.Millisecond
		}
		if p.Retry.BackoffFactor < 1 {
			p.Retry.BackoffFactor = 2
		}
		if p.Retry.Jitter == 0 {
			p.Retry.Jitter = 0.2
		}
		if p.Retry.Jitter < 0 {
			p.Retry.Jitter = 0
		}
	}
	if p.hedgeOn() {
		if p.Hedge.MinDelay <= 0 {
			p.Hedge.MinDelay = time.Millisecond
		}
		if p.Hedge.Percentile >= 1 {
			p.Hedge.Percentile = 0.99
		}
	}
	if p.Breaker.ConsecutiveFailures > 0 {
		if p.Breaker.BaseEjection <= 0 {
			p.Breaker.BaseEjection = 5 * time.Second
		}
		if p.Breaker.MaxEjection <= 0 {
			p.Breaker.MaxEjection = 80 * time.Second
		}
		if p.Breaker.MaxEjectionPercent <= 0 || p.Breaker.MaxEjectionPercent > 1 {
			p.Breaker.MaxEjectionPercent = 0.5
		}
	}
	return p
}

// String renders the policy in the -resilience flag grammar ParsePolicy
// accepts.
func (p Policy) String() string {
	var parts []string
	if p.Deadline > 0 {
		parts = append(parts, "deadline="+p.Deadline.String())
	}
	if p.Retry.MaxAttempts > 1 {
		parts = append(parts, "retries="+strconv.Itoa(p.Retry.MaxAttempts))
		if p.Retry.AttemptTimeout > 0 {
			parts = append(parts, "pertry="+p.Retry.AttemptTimeout.String())
		}
		if p.Retry.Backoff > 0 {
			parts = append(parts, "backoff="+p.Retry.Backoff.String())
		}
		if p.Retry.BudgetRatio > 0 {
			parts = append(parts, "budget="+strconv.FormatFloat(p.Retry.BudgetRatio, 'g', -1, 64))
		}
	}
	if p.Hedge.Delay > 0 {
		parts = append(parts, "hedge="+p.Hedge.Delay.String())
	} else if p.Hedge.Percentile > 0 {
		parts = append(parts, "hedge=p"+strconv.FormatFloat(p.Hedge.Percentile*100, 'g', -1, 64))
	}
	if p.Breaker.ConsecutiveFailures > 0 {
		parts = append(parts, "breaker="+strconv.Itoa(p.Breaker.ConsecutiveFailures))
	}
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, ",")
}

// ParsePolicy parses the textual policy format of the l3bench -resilience
// flag: comma-separated key=value pairs.
//
//	deadline=1s        logical-request deadline
//	retries=3          max attempts (first included)
//	pertry=250ms       per-attempt timeout (abandon and retry; 0 = wait)
//	backoff=10ms       base backoff      factor=2     growth per retry
//	jitter=0.2         ±fraction         budget=0.2   retry-budget ratio (0 = unbounded)
//	burst=20           budget bucket cap
//	hedge=p95          hedge at the p95 of observed latency (or hedge=40ms fixed)
//	hedgemin=5ms       floor under the learned hedge delay
//	breaker=5          eject after 5 consecutive failures
//	ejection=5s        base ejection window   maxejection=80s   window cap
//	maxejectpct=0.5    max fraction of backends ejected at once
func ParsePolicy(s string) (Policy, error) {
	var p Policy
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return p, fmt.Errorf("resilience: %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "deadline":
			p.Deadline, err = time.ParseDuration(val)
		case "retries":
			p.Retry.MaxAttempts, err = strconv.Atoi(val)
		case "pertry":
			p.Retry.AttemptTimeout, err = time.ParseDuration(val)
		case "backoff":
			p.Retry.Backoff, err = time.ParseDuration(val)
		case "factor":
			p.Retry.BackoffFactor, err = strconv.ParseFloat(val, 64)
		case "jitter":
			p.Retry.Jitter, err = strconv.ParseFloat(val, 64)
		case "budget":
			p.Retry.BudgetRatio, err = strconv.ParseFloat(val, 64)
		case "burst":
			p.Retry.BudgetBurst, err = strconv.ParseFloat(val, 64)
		case "hedge":
			if pct, isP := strings.CutPrefix(val, "p"); isP {
				var f float64
				f, err = strconv.ParseFloat(pct, 64)
				p.Hedge.Percentile = f / 100
			} else {
				p.Hedge.Delay, err = time.ParseDuration(val)
			}
		case "hedgemin":
			p.Hedge.MinDelay, err = time.ParseDuration(val)
		case "breaker":
			p.Breaker.ConsecutiveFailures, err = strconv.Atoi(val)
		case "ejection":
			p.Breaker.BaseEjection, err = time.ParseDuration(val)
		case "maxejection":
			p.Breaker.MaxEjection, err = time.ParseDuration(val)
		case "maxejectpct":
			p.Breaker.MaxEjectionPercent, err = strconv.ParseFloat(val, 64)
		default:
			return p, fmt.Errorf("resilience: unknown policy key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("resilience: bad %s value %q: %w", key, val, err)
		}
	}
	return p, nil
}

// Result is the outcome of one logical request across all its attempts.
type Result struct {
	// Result is the winning (or final failing) attempt's mesh result,
	// with Latency replaced by the client-perceived duration of the whole
	// logical request.
	mesh.Result
	// Attempts is how many attempts were launched (hedges included).
	Attempts int
	// Hedged reports whether a hedge attempt was launched.
	Hedged bool
	// DeadlineExceeded reports whether the deadline failed the request.
	DeadlineExceeded bool
}

// budget is the Finagle-style retry token bucket: deposits on logical
// requests, withdrawals on retries/hedges, capped at burst.
type budget struct {
	unlimited bool
	ratio     float64
	burst     float64
	tokens    float64
}

func newBudget(rc RetryConfig) budget {
	if rc.BudgetRatio <= 0 {
		return budget{unlimited: true}
	}
	burst := rc.BudgetBurst
	if burst <= 0 {
		burst = 100 * rc.BudgetRatio
		if burst < 10 {
			burst = 10
		}
	}
	return budget{ratio: rc.BudgetRatio, burst: burst, tokens: burst}
}

func (b *budget) deposit() {
	if b.unlimited {
		return
	}
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

func (b *budget) withdraw() bool {
	if b.unlimited {
		return true
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// svcState is a service's policy resolved once at Apply time (the same
// pattern as mesh's routeStats): budget, breaker, hedge-threshold tracker
// and metric handles, so the per-request path touches no maps beyond the
// service lookup and no label machinery at all.
type svcState struct {
	name    string
	policy  Policy
	budget  budget
	breaker *Breaker

	// lat tracks successful-response latency; the hedge threshold is its
	// configured percentile, recomputed every 64 observations so the hot
	// path reads a cached duration.
	lat        *histogram.Histogram
	observed   uint64
	hedgeDelay time.Duration

	mCalls, mRetries, mHedges, mBudgetDenied, mDeadline, mDuplicates *metrics.Counter
}

func (s *svcState) observe(latency time.Duration) {
	if s.policy.Hedge.Delay > 0 || s.policy.Hedge.Percentile <= 0 {
		return
	}
	s.lat.Record(latency)
	if s.observed++; s.observed&63 == 0 {
		d := s.lat.Quantile(s.policy.Hedge.Percentile)
		if d < s.policy.Hedge.MinDelay {
			d = s.policy.Hedge.MinDelay
		}
		s.hedgeDelay = d
	}
}

// hedgeAfter returns the current hedge delay, or 0 when hedging is off or
// the learned threshold has no data yet.
func (s *svcState) hedgeAfter() time.Duration {
	if s.policy.Hedge.Delay > 0 {
		return s.policy.Hedge.Delay
	}
	return s.hedgeDelay
}

// Client wraps a mesh with per-service resilience policies. Like the mesh
// it decorates, a Client is single-threaded on its engine. In sharded mode
// (NewShardClient) a client is additionally bound to one source cluster:
// all of its state — timers, token buckets, hedge histograms, the breaker —
// lives on that cluster's shard timeline, and every retry or hedge re-entry
// is a cross-shard continuation delivered back to that shard (the mesh
// already returns responses to the source shard, so the re-entering Call
// leaves from exactly where the client's timers run).
type Client struct {
	engine   *sim.Engine
	rng      *sim.Rand
	mesh     *mesh.Mesh
	src      string      // bound source cluster ("" = classic, any source)
	proxy    *mesh.Proxy // bound source handle (sharded mode)
	services map[string]*svcState

	freeOps      []*op
	freeAttempts []*attempt
}

// NewClient returns a resilience client over m. rng seeds backoff jitter;
// all arguments are required.
func NewClient(engine *sim.Engine, rng *sim.Rand, m *mesh.Mesh) *Client {
	if engine == nil || rng == nil || m == nil {
		panic("resilience: NewClient requires engine, rng and mesh")
	}
	return &Client{engine: engine, rng: rng, mesh: m, services: make(map[string]*svcState)}
}

// NewShardClient returns a resilience client for requests originating in
// one cluster of a sharded mesh. The client runs on that cluster's shard
// engine, records its metrics into that shard's registry, and installs its
// breaker filter on that shard's picker only — other clusters' proxies keep
// their own pickers, exactly as per-node Envoy/Linkerd sidecars keep
// per-node outlier state. Calls from any other source cluster error.
func NewShardClient(m *mesh.Mesh, src string, rng *sim.Rand) (*Client, error) {
	if m == nil || rng == nil {
		panic("resilience: NewShardClient requires mesh and rng")
	}
	engine, err := m.EngineFor(src)
	if err != nil {
		return nil, err
	}
	proxy, err := m.Proxy(src)
	if err != nil {
		return nil, err
	}
	return &Client{
		engine: engine, rng: rng, mesh: m, src: src, proxy: proxy,
		services: make(map[string]*svcState),
	}, nil
}

// Apply installs a policy for a service, resolving its metric handles and —
// when the breaker is enabled — wrapping the service's installed picker
// with the ejection filter. Applying an all-zero policy leaves the service
// on the pass-through path.
func (c *Client) Apply(service string, p Policy) error {
	svc, ok := c.mesh.Service(service)
	if !ok {
		return fmt.Errorf("resilience: unknown service %q", service)
	}
	p = p.withDefaults()
	if !p.Enabled() {
		delete(c.services, service)
		return nil
	}
	reg := c.mesh.Registry()
	if c.src != "" {
		// Sharded: counters live in the source shard's registry, updated
		// only on that shard's timeline.
		r, err := c.mesh.RegistryFor(c.src)
		if err != nil {
			return err
		}
		reg = r
	}
	labels := metrics.Labels{"service": service}
	st := &svcState{
		name:          service,
		policy:        p,
		budget:        newBudget(p.Retry),
		lat:           histogram.New(),
		mCalls:        reg.Counter(MetricRequestsTotal, labels),
		mRetries:      reg.Counter(MetricRetriesTotal, labels),
		mHedges:       reg.Counter(MetricHedgesTotal, labels),
		mBudgetDenied: reg.Counter(MetricBudgetExhaustedTotal, labels),
		mDeadline:     reg.Counter(MetricDeadlineExceededTotal, labels),
		mDuplicates:   reg.Counter(MetricDuplicatesTotal, labels),
	}
	if p.Breaker.ConsecutiveFailures > 0 {
		names := make([]string, 0, len(svc.Backends()))
		for _, b := range svc.Backends() {
			names = append(names, b.Name)
		}
		st.breaker = NewBreaker(c.engine, p.Breaker, service, names, reg)
		if c.src == "" {
			if err := c.mesh.SetPicker(service, &breakerPicker{
				breaker: st.breaker,
				inner:   c.mesh.Picker(service),
				rng:     c.rng,
			}); err != nil {
				return err
			}
		} else {
			// Sharded: the ejection filter wraps only the bound source
			// shard's picker. Breaker state mutates on response events,
			// which execute on the source shard — other shards' pickers
			// must not read it mid-window.
			inner, err := c.mesh.PickerFor(service, c.src)
			if err != nil {
				return err
			}
			if err := c.mesh.SetShardPicker(service, c.src, &breakerPicker{
				breaker: st.breaker,
				inner:   inner,
				rng:     c.rng,
			}); err != nil {
				return err
			}
		}
	}
	c.services[service] = st
	return nil
}

// Breaker returns the service's circuit breaker (nil when the policy has
// none).
func (c *Client) Breaker(service string) *Breaker {
	if st, ok := c.services[service]; ok {
		return st.breaker
	}
	return nil
}

// op is the pooled state of one logical request: attempt accounting, the
// cancellable timers of the lifecycle (deadline, hedge, backoff,
// per-attempt timeout),
// and the callbacks bound once per struct — a steady-state request
// allocates neither closures nor handles.
type op struct {
	c       *Client
	svc     *svcState // nil on the pass-through path
	service string
	src     string
	gen     uint64
	start   time.Duration

	deadlineAt   time.Duration // absolute; 0 = none
	attempts     int
	inFlight     int
	retryWait    time.Duration
	retryPending bool
	hedged       bool
	lastFail     mesh.Result
	done         func(Result)

	// cur is the newest in-flight attempt — the one the per-attempt
	// timeout watches. Cleared when that attempt answers or is abandoned.
	cur *attempt

	deadlineT, hedgeT, backoffT, attemptT       sim.Timer
	onDeadline, onHedge, onBackoff, onAttemptTO func()
}

func (c *Client) getOp() *op {
	var o *op
	if n := len(c.freeOps); n > 0 {
		o = c.freeOps[n-1]
		c.freeOps[n-1] = nil
		c.freeOps = c.freeOps[:n-1]
	} else {
		o = &op{c: c}
		o.onDeadline = func() { o.deadline() }
		o.onHedge = func() { o.hedge() }
		o.onBackoff = func() { o.backoff() }
		o.onAttemptTO = func() { o.attemptTimeout() }
	}
	o.attempts, o.inFlight = 0, 0
	o.deadlineAt, o.retryWait = 0, 0
	o.retryPending, o.hedged = false, false
	o.lastFail = mesh.Result{}
	o.cur = nil
	return o
}

// putOp recycles a finished request. Bumping gen here is what makes late
// attempt responses (hedge losers, post-deadline stragglers) detectably
// stale even after the struct is reused.
func (c *Client) putOp(o *op) {
	o.gen++
	o.svc, o.done = nil, nil
	c.freeOps = append(c.freeOps, o)
}

// attempt is the pooled per-attempt state: the op it belongs to, the op
// generation it was launched under, and the mesh completion callback bound
// once per struct.
type attempt struct {
	c   *Client
	svc *svcState
	o   *op
	gen uint64
	// stale marks an attempt abandoned by the per-attempt timeout: its
	// response settles as a duplicate even though the op is still live.
	stale bool
	fire  func(mesh.Result)
}

func (c *Client) getAttempt() *attempt {
	if n := len(c.freeAttempts); n > 0 {
		a := c.freeAttempts[n-1]
		c.freeAttempts[n-1] = nil
		c.freeAttempts = c.freeAttempts[:n-1]
		return a
	}
	a := &attempt{c: c}
	a.fire = func(r mesh.Result) { a.onResult(r) }
	return a
}

func (c *Client) putAttempt(a *attempt) {
	a.svc, a.o, a.stale = nil, nil, false
	c.freeAttempts = append(c.freeAttempts, a)
}

// Call issues one logical request from src to the named service under the
// service's policy. done fires exactly once with the overall outcome.
func (c *Client) Call(src, service string, done func(Result)) error {
	return c.call(src, service, 0, done)
}

// CallWithin is Call bounded additionally by an inherited absolute
// deadline (virtual time; 0 = none) — how nested calls propagate the
// enclosing request's remaining time budget. The effective deadline is
// the tighter of the inherited one and the service policy's own.
func (c *Client) CallWithin(inherited time.Duration, src, service string, done func(Result)) error {
	return c.call(src, service, inherited, done)
}

func (c *Client) call(src, service string, inherited time.Duration, done func(Result)) error {
	if done == nil {
		panic("resilience: Call requires a done callback")
	}
	if c.src != "" && src != c.src {
		return fmt.Errorf("resilience: shard client bound to %q cannot call from %q", c.src, src)
	}
	svc := c.services[service]
	now := c.engine.Now()
	o := c.getOp()
	o.svc, o.service, o.src = svc, service, src
	o.start, o.done = now, done

	var dl time.Duration
	if svc != nil {
		svc.mCalls.Inc()
		svc.budget.deposit()
		o.retryWait = svc.policy.Retry.Backoff
		if svc.policy.Deadline > 0 {
			dl = now + svc.policy.Deadline
		}
	}
	if inherited > 0 && (dl == 0 || inherited < dl) {
		dl = inherited
	}
	o.deadlineAt = dl

	if err := c.launch(o); err != nil {
		c.putOp(o)
		return err
	}
	if dl > 0 {
		c.engine.AtTimer(&o.deadlineT, dl, o.onDeadline)
	}
	if svc != nil {
		if d := svc.hedgeAfter(); d > 0 && (dl == 0 || now+d < dl) {
			c.engine.AtTimer(&o.hedgeT, now+d, o.onHedge)
		}
	}
	return nil
}

// launch sends one attempt through the mesh's normal load-balancing path
// (the picker may choose a different backend per attempt, as Linkerd's
// retries do).
func (c *Client) launch(o *op) error {
	a := c.getAttempt()
	a.svc, a.o, a.gen = o.svc, o, o.gen
	o.attempts++
	o.inFlight++
	var err error
	if c.proxy != nil {
		err = c.proxy.Call(o.service, a.fire)
	} else {
		err = c.mesh.Call(o.src, o.service, a.fire)
	}
	if err != nil {
		o.attempts--
		o.inFlight--
		c.putAttempt(a)
		return err
	}
	o.cur = a
	if o.svc != nil {
		if t := o.svc.policy.Retry.AttemptTimeout; t > 0 {
			c.engine.AtTimer(&o.attemptT, c.engine.Now()+t, o.onAttemptTO)
		}
	}
	return nil
}

// onResult is the completion path of one attempt. Breaker and latency
// feedback apply to every response — including stale ones, whose backend
// really did serve the attempt — but only the op's current generation can
// settle the logical request.
func (a *attempt) onResult(r mesh.Result) {
	c, o, gen, svc, stale := a.c, a.o, a.gen, a.svc, a.stale
	isCur := o.cur == a
	c.putAttempt(a)
	if svc != nil {
		if r.Success {
			svc.observe(r.Latency)
		}
		if svc.breaker != nil {
			svc.breaker.Record(c.engine.Now(), r.Backend, r.Success)
		}
	}
	if o.gen != gen || stale {
		if svc != nil {
			svc.mDuplicates.Inc()
		}
		return
	}
	if isCur {
		o.cur = nil
		o.attemptT.Cancel()
	}
	o.inFlight--
	if r.Success {
		o.finish(r, false)
		return
	}
	o.failed(r)
}

// failed decides what a failed attempt means for the logical request:
// schedule a budgeted retry if the policy, deadline and token bucket all
// allow it; otherwise wait for a still-outstanding twin attempt; otherwise
// settle with the failure.
func (o *op) failed(r mesh.Result) {
	c, svc := o.c, o.svc
	now := c.engine.Now()
	if svc != nil && !o.retryPending && o.attempts < svc.policy.Retry.MaxAttempts {
		wait := o.jittered(o.retryWait)
		if o.deadlineAt == 0 || now+wait < o.deadlineAt {
			if svc.budget.withdraw() {
				o.retryPending = true
				o.lastFail = r
				o.retryWait = time.Duration(float64(o.retryWait) * svc.policy.Retry.BackoffFactor)
				c.engine.AtTimer(&o.backoffT, now+wait, o.onBackoff)
				return
			}
			svc.mBudgetDenied.Inc()
		}
	}
	if o.inFlight > 0 || o.retryPending {
		o.lastFail = r
		return
	}
	o.finish(r, false)
}

// jittered spreads a backoff uniformly over ±Jitter of its nominal value,
// drawn from the client's seeded stream.
func (o *op) jittered(wait time.Duration) time.Duration {
	j := o.svc.policy.Retry.Jitter
	if j <= 0 {
		return wait
	}
	return time.Duration(float64(wait) * (1 + j*(2*o.c.rng.Float64()-1)))
}

// backoff is the retry timer firing: launch the next attempt.
func (o *op) backoff() {
	o.retryPending = false
	o.svc.mRetries.Inc()
	if err := o.c.launch(o); err != nil && o.inFlight == 0 {
		// The service vanished mid-flight; settle with the stored failure.
		o.finish(o.lastFail, false)
	}
}

// hedge is the hedge timer firing: the first attempt has been in flight
// past the threshold, so launch a second if the budget allows. The retry
// path owns the op while a backoff is pending — hedging then would race
// the scheduled retry.
func (o *op) hedge() {
	svc := o.svc
	if o.retryPending || o.hedged {
		return
	}
	if !svc.budget.withdraw() {
		svc.mBudgetDenied.Inc()
		return
	}
	o.hedged = true
	svc.mHedges.Inc()
	_ = o.c.launch(o)
}

// attemptTimeout is the per-attempt timer firing: the newest attempt has
// been unanswered too long, so abandon it and route through the normal
// failure path (which may retry, budget and deadline permitting). The
// abandoned attempt keeps executing server-side; its response lands as a
// duplicate.
func (o *op) attemptTimeout() {
	a := o.cur
	if a == nil {
		return
	}
	o.cur = nil
	a.stale = true
	o.inFlight--
	o.failed(mesh.Result{Latency: o.svc.policy.Retry.AttemptTimeout, Success: false})
}

// deadline is the deadline timer firing: fail the logical request now and
// cancel pending backoff/hedge work; in-flight attempts settle as
// duplicates via the generation guard.
func (o *op) deadline() {
	if o.svc != nil {
		o.svc.mDeadline.Inc()
	}
	r := o.lastFail
	r.Success = false
	o.finish(r, true)
}

// finish settles the logical request exactly once: cancel the remaining
// timers (seq-guarded, so fired ones are no-ops), recycle the op before
// the callback (which may issue nested calls), and report the
// client-perceived latency across all attempts and backoff.
func (o *op) finish(r mesh.Result, deadlineExceeded bool) {
	c := o.c
	o.deadlineT.Cancel()
	o.hedgeT.Cancel()
	o.backoffT.Cancel()
	o.attemptT.Cancel()
	o.cur = nil
	res := Result{Result: r, Attempts: o.attempts, Hedged: o.hedged, DeadlineExceeded: deadlineExceeded}
	res.Latency = c.engine.Now() - o.start
	done := o.done
	c.putOp(o)
	done(res)
}
