package resilience

import (
	"testing"
	"time"

	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
)

func newBreakerUnderTest(cfg BreakerConfig, backends ...string) *Breaker {
	cfg = Policy{Breaker: cfg}.withDefaults().Breaker
	return NewBreaker(sim.NewEngine(), cfg, "api", backends, metrics.NewRegistry())
}

func TestBreakerEjectsAfterConsecutiveFailures(t *testing.T) {
	b := newBreakerUnderTest(BreakerConfig{ConsecutiveFailures: 3, BaseEjection: 5 * time.Second}, "b1", "b2")
	now := time.Duration(0)
	b.Record(now, "b1", false)
	b.Record(now, "b1", true) // success resets the streak
	b.Record(now, "b1", false)
	b.Record(now, "b1", false)
	if !b.Allowed(now, "b1") {
		t.Fatal("ejected before reaching the consecutive-failure threshold")
	}
	b.Record(now, "b1", false)
	if b.Allowed(now, "b1") {
		t.Fatal("not ejected after 3 consecutive failures")
	}
	if b.Allowed(now, "b2") != true || b.EjectedCount(now) != 1 {
		t.Fatal("ejection leaked to the healthy backend")
	}
	// Restored exactly when the window expires, and failure streak resets.
	if b.Allowed(4*time.Second, "b1") {
		t.Fatal("restored before the 5s window expired")
	}
	if !b.Allowed(5*time.Second, "b1") {
		t.Fatal("not restored after the window expired")
	}
	if b.EjectedCount(5*time.Second) != 0 {
		t.Fatal("ejected count not decremented on restore")
	}
}

func TestBreakerEjectionWindowGrowsExponentially(t *testing.T) {
	b := newBreakerUnderTest(BreakerConfig{ConsecutiveFailures: 1, BaseEjection: 5 * time.Second, MaxEjection: 18 * time.Second}, "b1")
	eject := func(now time.Duration) time.Duration {
		b.Record(now, "b1", false)
		st := b.states["b1"]
		if !st.ejected {
			t.Fatalf("not ejected at %v", now)
		}
		return st.until - now
	}
	now := time.Duration(0)
	for i, want := range []time.Duration{5 * time.Second, 10 * time.Second, 18 * time.Second, 18 * time.Second} {
		got := eject(now)
		if got != want {
			t.Fatalf("ejection %d window = %v, want %v", i+1, got, want)
		}
		now += got // advance exactly to the restore point
		if !b.Allowed(now, "b1") {
			t.Fatalf("not restored after window %d", i+1)
		}
	}
}

func TestBreakerMaxEjectionPercent(t *testing.T) {
	b := newBreakerUnderTest(BreakerConfig{ConsecutiveFailures: 1, MaxEjectionPercent: 0.5}, "b1", "b2", "b3", "b4")
	now := time.Duration(0)
	// A correlated fault fails every backend at once: only half may go.
	for _, name := range []string{"b1", "b2", "b3", "b4"} {
		b.Record(now, name, false)
	}
	if got := b.EjectedCount(now); got != 2 {
		t.Fatalf("ejected %d of 4 backends, max-ejection-percent 0.5 allows 2", got)
	}
	if !b.Allowed(now, "b3") || !b.Allowed(now, "b4") {
		t.Fatal("guard failed: more than half the backends ejected")
	}
	if v := b.mDenied.Value(); v != 2 {
		t.Fatalf("denied counter = %v, want 2", v)
	}
	// Even with the threshold at 1, a lone backend set still allows the
	// first ejection (at-least-one rule)…
	lone := newBreakerUnderTest(BreakerConfig{ConsecutiveFailures: 1, MaxEjectionPercent: 0.5}, "b1", "b2")
	lone.Record(now, "b1", false)
	if lone.Allowed(now, "b1") {
		t.Fatal("first ejection must always be allowed")
	}
	// …but never the last backend standing.
	lone.Record(now, "b2", false)
	if !lone.Allowed(now, "b2") {
		t.Fatal("guard ejected the last backend of the service")
	}
}

func TestBreakerCountersConsistent(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := Policy{Breaker: BreakerConfig{ConsecutiveFailures: 1, BaseEjection: time.Second}}.withDefaults().Breaker
	b := NewBreaker(sim.NewEngine(), cfg, "api", []string{"b1"}, reg)
	now := time.Duration(0)
	for i := 0; i < 5; i++ {
		b.Record(now, "b1", false)
		st := b.states["b1"]
		now = st.until
		if !b.Allowed(now, "b1") {
			t.Fatalf("cycle %d: not restored at window end", i)
		}
	}
	ej := reg.Counter(MetricBreakerEjectionsTotal, metrics.Labels{"service": "api", "backend": "b1"}).Value()
	re := reg.Counter(MetricBreakerRestoresTotal, metrics.Labels{"service": "api", "backend": "b1"}).Value()
	if ej != 5 || re != 5 {
		t.Fatalf("ejections/restores = %v/%v, want 5/5", ej, re)
	}
}

// TestBreakerFiltersPickerEndToEnd drives the whole composition: a failing
// backend is ejected from the installed round-robin strategy's view within
// a few requests, traffic avoids it during the window, and it returns
// afterwards.
func TestBreakerFiltersPickerEndToEnd(t *testing.T) {
	bad := &scriptServer{latency: time.Millisecond, ok: false}
	good := &scriptServer{latency: time.Millisecond, ok: true}
	rig := newRig(t, map[string]*scriptServer{"bad": bad, "good": good})
	// Deterministic alternation so the bad backend sees traffic quickly.
	if err := rig.mesh.SetPicker("api", &roundRobin{}); err != nil {
		t.Fatal(err)
	}
	err := rig.client.Apply("api", Policy{
		Breaker: BreakerConfig{ConsecutiveFailures: 3, BaseEjection: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, fail := 0, 0
	for i := 0; i < 100; i++ {
		rig.engine.ScheduleAfter(time.Duration(i)*50*time.Millisecond, func() {
			_ = rig.client.Call("cluster-1", "api", func(r Result) {
				if r.Success {
					ok++
				} else {
					fail++
				}
			})
		})
	}
	rig.engine.Run()
	br := rig.client.Breaker("api")
	if br == nil {
		t.Fatal("no breaker installed")
	}
	// 3 failures trip the breaker; a 10s window covers 200 requests, so
	// the bad backend cycles eject → restore → re-eject and absorbs only
	// the probe-like trickle of 3 failures per cycle.
	if fail > 9 {
		t.Fatalf("%d failures in 100 requests, breaker barely helping", fail)
	}
	if bad.served >= 20 {
		t.Fatalf("ejected backend still served %d of 100 requests", bad.served)
	}
	if good.served+bad.served != 100 {
		t.Fatalf("served %d+%d, want 100 total", good.served, bad.served)
	}
}

// roundRobin is a minimal deterministic strategy for composition tests.
type roundRobin struct{ i int }

func (r *roundRobin) Pick(_ time.Duration, _, _ string, bs []*mesh.Backend) *mesh.Backend {
	b := bs[r.i%len(bs)]
	r.i++
	return b
}
