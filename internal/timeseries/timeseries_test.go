package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"l3/internal/histogram"
	"l3/internal/metrics"
	"l3/internal/sim"
)

func TestAppendAndLatest(t *testing.T) {
	db := NewDB(time.Minute)
	db.Append("x", metrics.Labels{"a": "1"}, 5*time.Second, 10)
	db.Append("x", metrics.Labels{"a": "1"}, 10*time.Second, 20)
	v, ok := db.Latest("x", nil, 12*time.Second)
	if !ok || v != 20 {
		t.Fatalf("Latest = %v,%v want 20,true", v, ok)
	}
	v, ok = db.Latest("x", nil, 7*time.Second)
	if !ok || v != 10 {
		t.Fatalf("Latest at 7s = %v,%v want 10,true", v, ok)
	}
	if _, ok := db.Latest("x", nil, time.Second); ok {
		t.Fatal("Latest before first sample should be !ok")
	}
	if _, ok := db.Latest("missing", nil, time.Minute); ok {
		t.Fatal("Latest of unknown family should be !ok")
	}
}

func TestLatestSumsAcrossSeries(t *testing.T) {
	db := NewDB(time.Minute)
	db.Append("g", metrics.Labels{"b": "1"}, time.Second, 3)
	db.Append("g", metrics.Labels{"b": "2"}, time.Second, 4)
	v, ok := db.Latest("g", nil, 2*time.Second)
	if !ok || v != 7 {
		t.Fatalf("Latest sum = %v, want 7", v)
	}
	v, ok = db.Latest("g", metrics.Labels{"b": "2"}, 2*time.Second)
	if !ok || v != 4 {
		t.Fatalf("Latest matched = %v, want 4", v)
	}
}

func TestOutOfOrderAppendDropped(t *testing.T) {
	db := NewDB(time.Minute)
	db.Append("x", nil, 10*time.Second, 1)
	db.Append("x", nil, 5*time.Second, 99)
	v, ok := db.Latest("x", nil, time.Minute)
	if !ok || v != 1 {
		t.Fatalf("out-of-order sample accepted: %v", v)
	}
}

func TestRateBasic(t *testing.T) {
	db := NewDB(time.Minute)
	// Counter increasing 10/s sampled every 5s.
	for i := 0; i <= 4; i++ {
		db.Append("req_total", nil, time.Duration(i)*5*time.Second, float64(i)*50)
	}
	r, ok := db.Rate("req_total", nil, 20*time.Second, 10*time.Second)
	if !ok || math.Abs(r-10) > 1e-9 {
		t.Fatalf("Rate = %v,%v want 10,true", r, ok)
	}
}

func TestRateNeedsTwoSamples(t *testing.T) {
	db := NewDB(time.Minute)
	db.Append("c", nil, 5*time.Second, 100)
	if _, ok := db.Rate("c", nil, 10*time.Second, 10*time.Second); ok {
		t.Fatal("rate with one sample in window should be !ok")
	}
	// Second sample outside the window does not help.
	db.Append("c", nil, 30*time.Second, 300)
	if _, ok := db.Rate("c", nil, 31*time.Second, 5*time.Second); ok {
		t.Fatal("rate with one in-window sample should be !ok")
	}
}

func TestRateSumsAcrossSeries(t *testing.T) {
	db := NewDB(time.Minute)
	for i := 0; i <= 2; i++ {
		ts := time.Duration(i) * 5 * time.Second
		db.Append("c", metrics.Labels{"b": "east"}, ts, float64(i*10))
		db.Append("c", metrics.Labels{"b": "west"}, ts, float64(i*30))
	}
	r, ok := db.Rate("c", nil, 10*time.Second, 10*time.Second)
	if !ok || math.Abs(r-8) > 1e-9 { // 2/s + 6/s
		t.Fatalf("summed rate = %v, want 8", r)
	}
	r, ok = db.Rate("c", metrics.Labels{"b": "west"}, 10*time.Second, 10*time.Second)
	if !ok || math.Abs(r-6) > 1e-9 {
		t.Fatalf("matched rate = %v, want 6", r)
	}
}

func TestRateHandlesCounterReset(t *testing.T) {
	db := NewDB(time.Minute)
	db.Append("c", nil, time.Second, 100)
	db.Append("c", nil, 6*time.Second, 150)
	db.Append("c", nil, 11*time.Second, 20) // reset, +20
	r, ok := db.Rate("c", nil, 11*time.Second, 11*time.Second)
	if !ok || math.Abs(r-7) > 1e-9 { // (50+20)/10s elapsed
		t.Fatalf("rate with reset = %v, want 7", r)
	}
}

func TestWindowIsHalfOpen(t *testing.T) {
	db := NewDB(time.Minute)
	db.Append("c", nil, 0, 0)
	db.Append("c", nil, 5*time.Second, 50)
	db.Append("c", nil, 10*time.Second, 100)
	// Window (0, 10]: the t=0 sample is excluded, leaving 2 samples.
	r, ok := db.Rate("c", nil, 10*time.Second, 10*time.Second)
	if !ok || math.Abs(r-10) > 1e-9 {
		t.Fatalf("half-open window rate = %v, want 10", r)
	}
}

func TestGaugeAvg(t *testing.T) {
	db := NewDB(time.Minute)
	db.Append("inflight", nil, 5*time.Second, 4)
	db.Append("inflight", nil, 10*time.Second, 8)
	v, ok := db.GaugeAvg("inflight", nil, 10*time.Second, 10*time.Second)
	if !ok || v != 6 {
		t.Fatalf("GaugeAvg = %v, want 6", v)
	}
	if _, ok := db.GaugeAvg("inflight", nil, 3*time.Second, time.Second); ok {
		t.Fatal("GaugeAvg with empty window should be !ok")
	}
}

func TestRetentionCompaction(t *testing.T) {
	db := NewDB(10 * time.Second)
	for i := 0; i < 100; i++ {
		db.Append("c", nil, time.Duration(i)*time.Second, float64(i))
	}
	// Old samples must be gone: a rate query over a huge window sees only
	// recent points, and Latest at an old timestamp fails.
	if _, ok := db.Latest("c", nil, 50*time.Second); ok {
		t.Fatal("sample older than retention still present")
	}
	v, ok := db.Latest("c", nil, 99*time.Second)
	if !ok || v != 99 {
		t.Fatalf("recent sample lost: %v %v", v, ok)
	}
}

func TestScrapeRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("req_total", metrics.Labels{"b": "x"}).Add(5)
	reg.Gauge("inflight", nil).Set(2)
	db := NewDB(time.Minute)
	db.Scrape(5*time.Second, reg)
	reg.Counter("req_total", metrics.Labels{"b": "x"}).Add(45)
	db.Scrape(10*time.Second, reg)

	r, ok := db.Rate("req_total", nil, 10*time.Second, 10*time.Second)
	if !ok || math.Abs(r-9) > 1e-9 {
		t.Fatalf("scraped rate = %v, want 9", r)
	}
	v, ok := db.Latest("inflight", nil, 10*time.Second)
	if !ok || v != 2 {
		t.Fatalf("scraped gauge = %v, want 2", v)
	}
}

func TestHistogramQuantileThroughScrapes(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("lat", metrics.Labels{"b": "east"}, histogram.LinkerdLatencyBounds)
	db := NewDB(time.Minute)
	db.Scrape(0, reg)
	// Observe 100 values around 40-50ms and 1 outlier at 2s between scrapes.
	for i := 0; i < 99; i++ {
		h.Observe(0.045)
	}
	h.Observe(2.0)
	db.Scrape(5*time.Second, reg)

	p50, ok := db.HistogramQuantile(0.5, "lat", nil, 5*time.Second, 10*time.Second)
	if !ok {
		t.Fatal("quantile !ok")
	}
	if p50 < 0.030 || p50 > 0.050 {
		t.Fatalf("p50 = %v, want within the 30-50ms bucket range", p50)
	}
	p999, ok := db.HistogramQuantile(0.999, "lat", nil, 5*time.Second, 10*time.Second)
	if !ok || p999 < 1 || p999 > 2 {
		t.Fatalf("p99.9 = %v, want in (1,2]", p999)
	}
}

func TestHistogramQuantileNoIncreaseIsNotOK(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("lat", nil, []float64{0.1, 1})
	h.Observe(0.05)
	db := NewDB(time.Minute)
	db.Scrape(0, reg)
	db.Scrape(5*time.Second, reg) // no new observations between scrapes
	if _, ok := db.HistogramQuantile(0.99, "lat", nil, 5*time.Second, 10*time.Second); ok {
		t.Fatal("quantile over zero-increase window should be !ok")
	}
}

func TestHistogramQuantileMergesSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	he := reg.Histogram("lat", metrics.Labels{"b": "east"}, []float64{0.1, 1, 10})
	hw := reg.Histogram("lat", metrics.Labels{"b": "west"}, []float64{0.1, 1, 10})
	db := NewDB(time.Minute)
	db.Scrape(0, reg)
	for i := 0; i < 50; i++ {
		he.Observe(0.05) // fast east
		hw.Observe(5.0)  // slow west
	}
	db.Scrape(5*time.Second, reg)

	// Merged median must land between the two clusters' buckets.
	p50, ok := db.HistogramQuantile(0.5, "lat", nil, 5*time.Second, 10*time.Second)
	if !ok || p50 > 1.0 {
		t.Fatalf("merged p50 = %v, want <= 1.0 (east bucket boundary)", p50)
	}
	p99, ok := db.HistogramQuantile(0.99, "lat", nil, 5*time.Second, 10*time.Second)
	if !ok || p99 < 1.0 {
		t.Fatalf("merged p99 = %v, want > 1.0 (west bucket)", p99)
	}
	// Per-backend query isolates east.
	p99e, ok := db.HistogramQuantile(0.99, "lat", metrics.Labels{"b": "east"}, 5*time.Second, 10*time.Second)
	if !ok || p99e > 0.2 {
		t.Fatalf("east p99 = %v, want <= 0.1-ish", p99e)
	}
}

func TestSeriesCount(t *testing.T) {
	db := NewDB(time.Minute)
	db.Append("a", metrics.Labels{"x": "1"}, 0, 1)
	db.Append("a", metrics.Labels{"x": "2"}, 0, 1)
	db.Append("b", nil, 0, 1)
	if got := db.SeriesCount(); got != 3 {
		t.Fatalf("SeriesCount = %d, want 3", got)
	}
}

func TestRateNonNegativeForMonotoneCountersProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rr := sim.NewRand(seed)
		db := NewDB(time.Minute)
		v := 0.0
		for i := 0; i <= 12; i++ {
			v += float64(rr.IntN(100))
			db.Append("c", nil, time.Duration(i)*5*time.Second, v)
		}
		for at := 10 * time.Second; at <= 60*time.Second; at += 5 * time.Second {
			if r, ok := db.Rate("c", nil, at, 10*time.Second); ok && r < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileMonotoneInQProperty(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("lat", nil, histogram.LinkerdLatencyBounds)
	db := NewDB(time.Minute)
	db.Scrape(0, reg)
	rr := sim.NewRand(7)
	for i := 0; i < 500; i++ {
		h.Observe(float64(rr.IntN(2000)) / 1000)
	}
	db.Scrape(5*time.Second, reg)
	prev := -1.0
	for q := 0.05; q < 1.0; q += 0.05 {
		v, ok := db.HistogramQuantile(q, "lat", nil, 5*time.Second, 10*time.Second)
		if !ok {
			t.Fatalf("quantile %v not ok", q)
		}
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

// rejectOddGate admits even values, rejects odd ones, and doubles what it
// admits — enough behaviour to prove both the reject and the adjust path.
type rejectOddGate struct{ rejected int }

func (g *rejectOddGate) Admit(name string, labels metrics.Labels, kind metrics.Kind, t time.Duration, v float64) (float64, bool) {
	if int64(v)%2 != 0 {
		g.rejected++
		return 0, false
	}
	return v * 2, true
}

func TestAppendSampleRoutesThroughGate(t *testing.T) {
	db := NewDB(time.Minute)
	g := &rejectOddGate{}
	db.SetGate(g)
	db.AppendSample("c", nil, metrics.KindCounter, 5*time.Second, 10)
	db.AppendSample("c", nil, metrics.KindCounter, 10*time.Second, 11) // rejected
	db.AppendSample("c", nil, metrics.KindCounter, 15*time.Second, 20)
	if g.rejected != 1 {
		t.Fatalf("gate rejected %d, want 1", g.rejected)
	}
	v, ok := db.Latest("c", nil, time.Minute)
	if !ok || v != 40 { // adjusted: 20*2
		t.Fatalf("Latest = %v,%v want 40 (gate-adjusted)", v, ok)
	}
	// The rejected sample left no trace: only two points stored.
	if at, ok := db.NewestSample("c", nil); !ok || at != 15*time.Second {
		t.Fatalf("NewestSample = %v,%v want 15s", at, ok)
	}
}

func TestAppendSampleWithoutGateIsAppend(t *testing.T) {
	db := NewDB(time.Minute)
	db.AppendSample("c", nil, metrics.KindCounter, 5*time.Second, 7)
	v, ok := db.Latest("c", nil, time.Minute)
	if !ok || v != 7 {
		t.Fatalf("Latest = %v,%v want 7 (ungated passthrough)", v, ok)
	}
}

func TestNewestSample(t *testing.T) {
	db := NewDB(time.Minute)
	if _, ok := db.NewestSample("c", nil); ok {
		t.Fatal("NewestSample of unknown family should be !ok")
	}
	db.Append("c", metrics.Labels{"b": "east"}, 5*time.Second, 1)
	db.Append("c", metrics.Labels{"b": "west"}, 9*time.Second, 1)
	at, ok := db.NewestSample("c", nil)
	if !ok || at != 9*time.Second {
		t.Fatalf("NewestSample all = %v,%v want 9s", at, ok)
	}
	at, ok = db.NewestSample("c", metrics.Labels{"b": "east"})
	if !ok || at != 5*time.Second {
		t.Fatalf("NewestSample east = %v,%v want 5s", at, ok)
	}
	if _, ok := db.NewestSample("c", metrics.Labels{"b": "north"}); ok {
		t.Fatal("NewestSample of unmatched labels should be !ok")
	}
}

func TestScrapeRoutesThroughGate(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("req_total", nil).Add(4)
	db := NewDB(time.Minute)
	db.SetGate(&rejectOddGate{})
	db.Scrape(5*time.Second, reg)
	v, ok := db.Latest("req_total", nil, time.Minute)
	if !ok || v != 8 { // 4 doubled by the gate
		t.Fatalf("gated scrape stored %v,%v want 8", v, ok)
	}
}
