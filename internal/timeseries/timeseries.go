// Package timeseries is a miniature in-memory time-series database in the
// spirit of Prometheus, storing scraped metric samples and answering the
// windowed queries L3 issues: counter rates, gauge averages and
// histogram-quantile estimates over a trailing window.
//
// L3's data-freshness semantics come from this layer: samples only exist at
// scrape instants (every 5 s by default), a rate query needs at least two
// samples inside its window (hence the paper's 10 s window), and per-second
// rates are averages over the sampled interval. Queries return ok=false
// when the window holds insufficient data, which the controller treats as
// "no traffic" and relaxes its filters toward defaults.
package timeseries

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"l3/internal/histogram"
	"l3/internal/metrics"
)

// Point is one sampled value of one series.
type Point struct {
	T time.Duration // virtual scrape time
	V float64
}

type series struct {
	labels metrics.Labels
	points []Point
}

// Gate screens samples before ingestion. A gate may rewrite the admitted
// value (e.g. splice a counter reset onto a cumulative offset) or reject the
// sample outright. Implemented by internal/guard's hygiene layer; the
// interface lives here so timeseries does not import its guards.
//
// Gates run on the scrape path only — the request fast path never sees them.
type Gate interface {
	Admit(name string, labels metrics.Labels, kind metrics.Kind, t time.Duration, v float64) (adjusted float64, ok bool)
}

// DB stores samples by (metric name, label set) and answers window queries.
// Safe for concurrent use.
type DB struct {
	mu        sync.Mutex
	retention time.Duration
	gate      Gate
	byName    map[string]map[string]*series // name -> label key -> series
}

// NewDB returns a database that retains at least the given duration of
// samples per series. Retention must cover the largest query window used;
// anything older may be compacted away.
func NewDB(retention time.Duration) *DB {
	if retention <= 0 {
		retention = 2 * time.Minute
	}
	return &DB{
		retention: retention,
		byName:    make(map[string]map[string]*series),
	}
}

// Append stores one sample. Appends must be in strictly increasing time
// order per series (scrapes are); out-of-order and duplicate-timestamp
// samples are dropped — a double-fired scrape must not double a window's
// increase.
func (db *DB) Append(name string, labels metrics.Labels, t time.Duration, v float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	byKey, ok := db.byName[name]
	if !ok {
		byKey = make(map[string]*series)
		db.byName[name] = byKey
	}
	key := labels.Key()
	s, ok := byKey[key]
	if !ok {
		s = &series{labels: labels.Clone()}
		byKey[key] = s
	}
	if n := len(s.points); n > 0 && s.points[n-1].T >= t {
		return
	}
	s.points = append(s.points, Point{T: t, V: v})
	// Compact: drop points older than retention, keeping at least two.
	cutoff := t - db.retention
	drop := 0
	for drop < len(s.points)-2 && s.points[drop].T < cutoff {
		drop++
	}
	if drop > 0 {
		s.points = append(s.points[:0], s.points[drop:]...)
	}
}

// SetGate installs an ingestion gate applied to samples arriving through
// AppendSample/Scrape. A nil gate restores raw ingestion. Gates see the
// scrape path only; queries and the data plane are unaffected.
func (db *DB) SetGate(g Gate) {
	db.mu.Lock()
	db.gate = g
	db.mu.Unlock()
}

// AppendSample routes one scraped sample through the gate (when one is
// installed) and stores the admitted, possibly adjusted value. Without a
// gate it is equivalent to Append.
func (db *DB) AppendSample(name string, labels metrics.Labels, kind metrics.Kind, t time.Duration, v float64) {
	db.mu.Lock()
	g := db.gate
	db.mu.Unlock()
	if g != nil {
		adjusted, ok := g.Admit(name, labels, kind, t, v)
		if !ok {
			return
		}
		v = adjusted
	}
	db.Append(name, labels, t, v)
}

// Scrape snapshots a registry and appends every sample at time t, mimicking
// one Prometheus scrape pass. Samples pass through the ingestion gate when
// one is installed.
func (db *DB) Scrape(t time.Duration, reg *metrics.Registry) {
	for _, s := range reg.Snapshot() {
		db.AppendSample(s.Name, s.Labels, s.Kind, t, s.Value)
	}
}

// SeriesCount returns the number of distinct series stored, for tests and
// introspection.
func (db *DB) SeriesCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for _, byKey := range db.byName {
		n += len(byKey)
	}
	return n
}

// window extracts the points of s inside (from, to] — Prometheus range
// semantics.
func (s *series) window(from, to time.Duration) []Point {
	pts := s.points
	lo := 0
	for lo < len(pts) && pts[lo].T <= from {
		lo++
	}
	hi := lo
	for hi < len(pts) && pts[hi].T <= to {
		hi++
	}
	return pts[lo:hi]
}

// matching returns the series of the named family whose labels contain
// match as a subset.
func (db *DB) matching(name string, match metrics.Labels) []*series {
	byKey, ok := db.byName[name]
	if !ok {
		return nil
	}
	var out []*series
	for _, s := range byKey {
		if s.labels.Matches(match) {
			out = append(out, s)
		}
	}
	return out
}

// increase computes the counter increase across the window's samples,
// tolerating counter resets (a drop restarts accumulation, like Prometheus).
func increase(pts []Point) (delta float64, ok bool) {
	if len(pts) < 2 {
		return 0, false
	}
	prev := pts[0].V
	for _, p := range pts[1:] {
		if p.V >= prev {
			delta += p.V - prev
		} else {
			delta += p.V // reset: counter restarted from 0
		}
		prev = p.V
	}
	return delta, true
}

// Rate returns the summed per-second rate of increase of all series of the
// named counter family matching match, over the window (at-window, at].
// ok is false when no matching series has the two samples a rate needs.
func (db *DB) Rate(name string, match metrics.Labels, at, window time.Duration) (rate float64, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.rateLocked(name, match, at, window)
}

func (db *DB) rateLocked(name string, match metrics.Labels, at, window time.Duration) (float64, bool) {
	var (
		total float64
		any   bool
	)
	for _, s := range db.matching(name, match) {
		pts := s.window(at-window, at)
		delta, ok := increase(pts)
		if !ok {
			continue
		}
		elapsed := (pts[len(pts)-1].T - pts[0].T).Seconds()
		if elapsed <= 0 {
			continue
		}
		total += delta / elapsed
		any = true
	}
	return total, any
}

// GaugeAvg returns the average of all samples of the matching gauge series
// inside the window, across series (avg_over_time of the summed gauge,
// approximated by sample mean per timestamp). ok is false with no samples.
func (db *DB) GaugeAvg(name string, match metrics.Labels, at, window time.Duration) (avg float64, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	var sum float64
	var n int
	for _, s := range db.matching(name, match) {
		for _, p := range s.window(at-window, at) {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Latest returns the most recent sample value at or before at across
// matching series, summed over series. ok is false when no series has a
// sample.
func (db *DB) Latest(name string, match metrics.Labels, at time.Duration) (v float64, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	var sum float64
	any := false
	for _, s := range db.matching(name, match) {
		pts := s.points
		for i := len(pts) - 1; i >= 0; i-- {
			if pts[i].T <= at {
				sum += pts[i].V
				any = true
				break
			}
		}
	}
	return sum, any
}

// NewestSample returns the timestamp of the most recent stored sample across
// matching series of the named family — the freshness clock the staleness
// classifier reads. ok is false when no matching series has any sample.
func (db *DB) NewestSample(name string, match metrics.Labels) (t time.Duration, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	any := false
	for _, s := range db.matching(name, match) {
		if n := len(s.points); n > 0 {
			if last := s.points[n-1].T; !any || last > t {
				t = last
			}
			any = true
		}
	}
	return t, any
}

// HistogramQuantile estimates the q-quantile of the named histogram family
// over the window, PromQL-style: it computes the per-bucket rate of each
// *_bucket series (identified by the "le" label), sums them across matching
// series, converts the cumulative layout to per-bucket counts and applies
// linear interpolation within the located bucket. The result unit matches
// the bucket bounds (seconds for latency). ok is false when the window
// carries no bucket increases.
func (db *DB) HistogramQuantile(q float64, name string, match metrics.Labels, at, window time.Duration) (float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()

	type bucketRate struct {
		bound float64
		inf   bool
		rate  float64
	}
	rates := make(map[string]*bucketRate)
	for _, s := range db.matching(name+"_bucket", match) {
		le, ok := s.labels["le"]
		if !ok {
			continue
		}
		pts := s.window(at-window, at)
		delta, ok := increase(pts)
		if !ok {
			continue
		}
		br, ok := rates[le]
		if !ok {
			br = &bucketRate{}
			if le == "+Inf" {
				br.inf = true
			} else {
				b, err := parseFloat(le)
				if err != nil {
					continue
				}
				br.bound = b
			}
			rates[le] = br
		}
		br.rate += delta
	}
	if len(rates) == 0 {
		return 0, false
	}

	var (
		bounds     []float64
		cumulative []float64
		infRate    float64
		haveInf    bool
	)
	ordered := make([]*bucketRate, 0, len(rates))
	for _, br := range rates {
		if br.inf {
			infRate = br.rate
			haveInf = true
			continue
		}
		ordered = append(ordered, br)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].bound < ordered[j].bound })
	for _, br := range ordered {
		bounds = append(bounds, br.bound)
		cumulative = append(cumulative, br.rate)
	}
	if !haveInf {
		if len(cumulative) == 0 {
			return 0, false
		}
		infRate = cumulative[len(cumulative)-1]
	}

	// Convert cumulative counts to per-bucket counts.
	counts := make([]float64, len(bounds)+1)
	prev := 0.0
	for i, c := range cumulative {
		d := c - prev
		if d < 0 {
			d = 0
		}
		counts[i] = d
		prev = c
	}
	over := infRate - prev
	if over < 0 {
		over = 0
	}
	counts[len(bounds)] = over

	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, false
	}
	return histogram.BucketQuantile(q, bounds, counts), true
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}
