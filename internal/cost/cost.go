// Package cost models inter-cluster data-transfer pricing and makes L3
// aware of it — the first extension the paper's conclusion proposes ("L3
// could be extended with additional parameters to make it aware of data
// transmission costs from cloud vendors", §7; §6 notes L3 "lacks awareness
// of the network transfer costs"). The big three clouds charge for any
// transfer leaving a zone, which locality-aware balancing avoids and pure
// latency-aware balancing happily pays.
//
// The Assigner decorator discounts each backend's weight by the marginal
// dollar cost of reaching it from the controller's cluster, with a
// tunable exchange rate λ between dollars and latency: λ = 0 reproduces
// plain L3, larger λ trades tail latency for cheaper traffic.
package cost

import (
	"fmt"
	"sort"
	"time"

	"l3/internal/core"
)

// Rates is a transfer price table in dollars per GB.
type Rates struct {
	// IntraCluster covers same-cluster traffic (free on every cloud).
	IntraCluster float64
	// InterCluster is the default price between distinct clusters
	// (AWS-like cross-AZ/region transfer, default $0.02/GB).
	InterCluster float64
	// Links overrides specific directed links.
	Links map[[2]string]float64
}

// DefaultRates mirrors common public-cloud pricing: free in-cluster,
// $0.02/GB between clusters.
func DefaultRates() Rates {
	return Rates{InterCluster: 0.02}
}

// PerGB returns the price of moving a gigabyte from src to dst.
func (r Rates) PerGB(src, dst string) float64 {
	if rate, ok := r.Links[[2]string{src, dst}]; ok {
		return rate
	}
	if src == dst {
		return r.IntraCluster
	}
	return r.InterCluster
}

// Model prices request traffic.
type Model struct {
	rates Rates
	// bytesPerRequest approximates the request+response payload.
	bytesPerRequest float64
}

// NewModel returns a model; bytesPerRequest <= 0 defaults to 16 KiB
// (a modest request plus a JSON response).
func NewModel(rates Rates, bytesPerRequest float64) *Model {
	if bytesPerRequest <= 0 {
		bytesPerRequest = 16 << 10
	}
	return &Model{rates: rates, bytesPerRequest: bytesPerRequest}
}

// RequestCost returns the dollar cost of one request from src to dst.
func (m *Model) RequestCost(src, dst string) float64 {
	return m.rates.PerGB(src, dst) * m.bytesPerRequest / (1 << 30)
}

// TrafficCost prices a request-count matrix keyed by (src, dst) cluster.
// Links are summed in sorted order so the floating-point total is
// reproducible across runs (map iteration order is not).
func (m *Model) TrafficCost(counts map[[2]string]float64) float64 {
	links := make([][2]string, 0, len(counts))
	for link := range counts {
		links = append(links, link)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	var total float64
	for _, link := range links {
		total += counts[link] * m.RequestCost(link[0], link[1])
	}
	return total
}

// String describes the model.
func (m *Model) String() string {
	return fmt.Sprintf("cost{inter=$%.3f/GB req=%.0fB}", m.rates.InterCluster, m.bytesPerRequest)
}

// Assigner decorates a core.Assigner with cost awareness: every backend's
// weight is divided by (1 + λ·costSeconds), where costSeconds is the
// backend's marginal transfer cost expressed in the same unit as Lest by
// the exchange rate. With Equation 4's w = 1/((Rᵢ+1)²·Lest) this is
// equivalent to adding a cost term to the estimated latency — dollars
// become virtual milliseconds.
type Assigner struct {
	inner     core.Assigner
	model     *Model
	src       string
	clusterOf func(backend string) string
	// lambda converts dollars per request into seconds of virtual
	// latency (seconds per dollar).
	lambda float64
}

var _ core.Assigner = (*Assigner)(nil)

// NewAssigner wraps inner. clusterOf maps a TrafficSplit backend name to
// its cluster; lambda is the dollars→latency exchange rate in seconds per
// dollar (0 disables cost awareness).
func NewAssigner(inner core.Assigner, model *Model, src string, clusterOf func(string) string, lambda float64) *Assigner {
	if inner == nil || model == nil || clusterOf == nil {
		panic("cost: NewAssigner requires inner assigner, model and clusterOf")
	}
	return &Assigner{inner: inner, model: model, src: src, clusterOf: clusterOf, lambda: lambda}
}

// Assign implements core.Assigner.
func (a *Assigner) Assign(now time.Duration, m map[string]core.BackendMetrics) map[string]float64 {
	weights := a.inner.Assign(now, m)
	if a.lambda <= 0 {
		return weights
	}
	for b, w := range weights {
		costSeconds := a.lambda * a.model.RequestCost(a.src, a.clusterOf(b))
		weights[b] = w / (1 + costSeconds*w)
	}
	return weights
}

// Forget implements core.Assigner.
func (a *Assigner) Forget(b string) { a.inner.Forget(b) }
