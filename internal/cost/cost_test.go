package cost

import (
	"math"
	"testing"
	"time"

	"l3/internal/core"
)

func TestRatesLookup(t *testing.T) {
	r := DefaultRates()
	if r.PerGB("a", "a") != 0 {
		t.Fatal("intra-cluster transfer should be free")
	}
	if r.PerGB("a", "b") != 0.02 {
		t.Fatalf("inter-cluster = %v", r.PerGB("a", "b"))
	}
	r.Links = map[[2]string]float64{{"a", "b"}: 0.09}
	if r.PerGB("a", "b") != 0.09 {
		t.Fatal("link override ignored")
	}
	if r.PerGB("b", "a") != 0.02 {
		t.Fatal("override leaked to the reverse direction")
	}
}

func TestRequestAndTrafficCost(t *testing.T) {
	m := NewModel(DefaultRates(), 1<<30) // 1 GiB per request for easy numbers
	if got := m.RequestCost("a", "b"); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("RequestCost = %v", got)
	}
	if got := m.RequestCost("a", "a"); got != 0 {
		t.Fatalf("local RequestCost = %v", got)
	}
	total := m.TrafficCost(map[[2]string]float64{
		{"a", "a"}: 100, // free
		{"a", "b"}: 10,  // 10 x $0.02
	})
	if math.Abs(total-0.2) > 1e-9 {
		t.Fatalf("TrafficCost = %v", total)
	}
}

func TestModelDefaultBytes(t *testing.T) {
	m := NewModel(DefaultRates(), 0)
	want := 0.02 * float64(16<<10) / float64(1<<30)
	if got := m.RequestCost("a", "b"); math.Abs(got-want) > 1e-15 {
		t.Fatalf("default-bytes cost = %v, want %v", got, want)
	}
}

// staticAssigner returns fixed weights.
type staticAssigner struct {
	weights map[string]float64
	forgot  []string
}

func (s *staticAssigner) Assign(time.Duration, map[string]core.BackendMetrics) map[string]float64 {
	out := make(map[string]float64, len(s.weights))
	for k, v := range s.weights {
		out[k] = v
	}
	return out
}

func (s *staticAssigner) Forget(b string) { s.forgot = append(s.forgot, b) }

func clusterOf(b string) string {
	// "svc-clusterX" -> "clusterX"
	return b[len("svc-"):]
}

func TestAssignerZeroLambdaIsIdentity(t *testing.T) {
	inner := &staticAssigner{weights: map[string]float64{"svc-c1": 10, "svc-c2": 10}}
	a := NewAssigner(inner, NewModel(DefaultRates(), 0), "c1", clusterOf, 0)
	w := a.Assign(0, nil)
	if w["svc-c1"] != 10 || w["svc-c2"] != 10 {
		t.Fatalf("lambda=0 changed weights: %v", w)
	}
}

func TestAssignerPenalizesRemoteBackends(t *testing.T) {
	inner := &staticAssigner{weights: map[string]float64{"svc-c1": 10, "svc-c2": 10}}
	model := NewModel(DefaultRates(), 16<<10)
	// λ chosen so a remote request costs ~10ms of virtual latency:
	// 0.01s / RequestCost.
	lambda := 0.01 / model.RequestCost("c1", "c2")
	a := NewAssigner(inner, model, "c1", clusterOf, lambda)
	w := a.Assign(0, nil)
	if w["svc-c1"] != 10 {
		t.Fatalf("local weight changed: %v", w["svc-c1"])
	}
	// Remote: w' = 1/(1/10 + 0.01) = 9.0909...
	if math.Abs(w["svc-c2"]-1/0.11) > 1e-9 {
		t.Fatalf("remote weight = %v, want %v", w["svc-c2"], 1/0.11)
	}
}

func TestAssignerLambdaMonotone(t *testing.T) {
	model := NewModel(DefaultRates(), 16<<10)
	prev := math.Inf(1)
	for _, lambda := range []float64{0, 1e4, 1e5, 1e6} {
		inner := &staticAssigner{weights: map[string]float64{"svc-c2": 10}}
		a := NewAssigner(inner, model, "c1", clusterOf, lambda)
		w := a.Assign(0, nil)["svc-c2"]
		if w > prev {
			t.Fatalf("remote weight not monotone in lambda: %v after %v", w, prev)
		}
		prev = w
	}
}

func TestAssignerForgetDelegates(t *testing.T) {
	inner := &staticAssigner{weights: map[string]float64{}}
	a := NewAssigner(inner, NewModel(DefaultRates(), 0), "c1", clusterOf, 1)
	a.Forget("svc-c9")
	if len(inner.forgot) != 1 || inner.forgot[0] != "svc-c9" {
		t.Fatalf("Forget not delegated: %v", inner.forgot)
	}
}

func TestAssignerNilDepsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil deps did not panic")
		}
	}()
	NewAssigner(nil, nil, "c1", nil, 1)
}
