package tracing_test

import (
	"reflect"
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/mesh"
	"l3/internal/sim"
	"l3/internal/tracing"
	"l3/internal/wan"
)

// runShardedTrace drives a two-cluster sharded mesh with cross- and
// same-cluster calls from both source clusters and returns the canonical
// merged trace. The whole point of ShardedRecorder is that this slice is a
// pure function of the seed — the worker count must not show.
func runShardedTrace(t *testing.T, workers int) []tracing.Span {
	t.Helper()
	clusters := []string{"cluster-1", "cluster-2"}
	wanModel := wan.New(wan.DefaultConfig())
	se := sim.NewSharded(len(clusters), wanModel.MinOneWayDelay())
	se.SetWorkers(workers)
	rng := sim.NewRand(7)
	m, err := mesh.NewSharded(se, clusters, rng.Fork(), wanModel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddService("api"); err != nil {
		t.Fatal(err)
	}
	profile := func(base time.Duration) backend.Profile {
		return func(_ time.Duration, r *sim.Rand) (time.Duration, bool) {
			return base + time.Duration(r.IntN(int(time.Millisecond))), true
		}
	}
	for i, cl := range clusters {
		if _, err := m.AddBackend("api", "api-"+cl, cl, backend.Config{}, profile(time.Duration(i+5)*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}

	sr := tracing.NewShardedRecorder(clusters, 0)
	for _, cl := range clusters {
		if err := m.SetShardSpanRecorder(cl, sr.For(cl)); err != nil {
			t.Fatal(err)
		}
	}

	for i, cl := range clusters {
		proxy, err := m.Proxy(cl)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := m.EngineFor(cl)
		if err != nil {
			t.Fatal(err)
		}
		var tick func()
		tick = func() {
			if err := proxy.Call("api", func(mesh.Result) {}); err != nil {
				t.Error(err)
			}
			eng.Schedule(eng.Now()+7*time.Millisecond, tick)
		}
		eng.Schedule(time.Duration(i+1)*time.Millisecond, tick)
	}
	se.RunUntil(500 * time.Millisecond)

	if sr.Dropped() != 0 {
		t.Fatalf("recorder dropped %d spans", sr.Dropped())
	}
	return sr.Spans()
}

func TestShardedRecorderTraceInvariantAcrossWorkers(t *testing.T) {
	want := runShardedTrace(t, 1)
	if len(want) == 0 {
		t.Fatal("no spans recorded")
	}
	for _, workers := range []int{2} {
		got := runShardedTrace(t, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: merged trace diverged (%d vs %d spans)", workers, len(got), len(want))
		}
	}
}

func TestShardedRecorderMergeIsStartSortedAndComplete(t *testing.T) {
	spans := runShardedTrace(t, 2)
	bySrc := map[string]int{}
	for i, sp := range spans {
		if i > 0 && spans[i-1].Start > sp.Start {
			t.Fatalf("span %d starts at %v after successor of %v", i, sp.Start, spans[i-1].Start)
		}
		bySrc[sp.Src]++
	}
	for _, cl := range []string{"cluster-1", "cluster-2"} {
		if bySrc[cl] == 0 {
			t.Fatalf("no spans from source %s: %v", cl, bySrc)
		}
	}
}
