// Package tracing is the distributed-tracing substrate behind the paper's
// trace-extraction methodology: §5.1 explains that the workload scenarios
// were built from latency traces "generated via distributed tracing", with
// network-delay spans excluded so that only service execution latency
// remains. This package records one span per mesh request — carrying both
// the client-observed duration (network included) and the server-side
// execution duration (network excluded) — and provides the extraction
// step: per-backend execution-latency series of the exact shape the
// scenario generators consume.
package tracing

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"l3/internal/histogram"
)

// Span is one completed request as both endpoints saw it.
type Span struct {
	// Service and Backend identify the callee; Src the calling cluster.
	Service string
	Backend string
	Src     string
	// Start and End bound the client-observed span (network included).
	Start, End time.Duration
	// ServerDuration is the backend-side queue+execution time — the
	// client span minus network transit, i.e. what remains after the
	// paper's network-span exclusion.
	ServerDuration time.Duration
	// Success mirrors the response classification.
	Success bool
}

// ClientDuration returns the client-observed duration.
func (s Span) ClientDuration() time.Duration { return s.End - s.Start }

// NetworkDelay returns the transit component (client minus server).
func (s Span) NetworkDelay() time.Duration {
	d := s.ClientDuration() - s.ServerDuration
	if d < 0 {
		return 0
	}
	return d
}

// Recorder collects spans. Safe for concurrent use. The zero value is not
// usable; construct with NewRecorder.
type Recorder struct {
	mu    sync.Mutex
	spans []Span
	limit int
	drops uint64
}

// NewRecorder returns a recorder keeping at most limit spans (0 = 1<<20);
// further spans are counted as dropped, like a tracing backend's sampling
// cap.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{limit: limit}
}

// Record stores one span.
func (r *Recorder) Record(sp Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.limit {
		r.drops++
		return
	}
	r.spans = append(r.spans, sp)
}

// Len returns the number of stored spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped returns how many spans exceeded the cap.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drops
}

// Spans returns a copy of the stored spans.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// ExtractionMode selects which duration the extraction aggregates.
type ExtractionMode int

const (
	// ExecutionOnly excludes network transit — the paper's §5.1 choice
	// when converting production traces into test scenarios.
	ExecutionOnly ExtractionMode = iota + 1
	// ClientObserved keeps network transit in.
	ClientObserved
)

// SeriesPoint is one time bucket of an extracted latency series.
type SeriesPoint struct {
	Median  time.Duration
	P99     time.Duration
	Count   int
	Success float64
}

// Extraction is a per-key set of latency series plus summary statistics.
type Extraction struct {
	BucketWidth time.Duration
	// Series maps key (backend or service) to per-bucket points.
	Series map[string][]SeriesPoint
}

// Extract aggregates spans into per-backend time-bucketed latency series —
// the transformation the paper applied to its production traces. keyFn
// selects the grouping (per backend, per service, per source cluster).
func Extract(spans []Span, bucket time.Duration, mode ExtractionMode, keyFn func(Span) string) *Extraction {
	if bucket <= 0 {
		bucket = time.Second
	}
	if keyFn == nil {
		keyFn = func(s Span) string { return s.Backend }
	}
	type acc struct {
		hist    *histogram.Histogram
		count   int
		success int
	}
	byKey := make(map[string]map[int]*acc)
	maxBucket := make(map[string]int)
	for _, sp := range spans {
		key := keyFn(sp)
		i := int(sp.Start / bucket)
		buckets, ok := byKey[key]
		if !ok {
			buckets = make(map[int]*acc)
			byKey[key] = buckets
		}
		a, ok := buckets[i]
		if !ok {
			a = &acc{hist: histogram.New()}
			buckets[i] = a
		}
		d := sp.ServerDuration
		if mode == ClientObserved {
			d = sp.ClientDuration()
		}
		a.hist.Record(d)
		a.count++
		if sp.Success {
			a.success++
		}
		if i > maxBucket[key] {
			maxBucket[key] = i
		}
	}

	out := &Extraction{BucketWidth: bucket, Series: make(map[string][]SeriesPoint, len(byKey))}
	for key, buckets := range byKey {
		series := make([]SeriesPoint, maxBucket[key]+1)
		for i := range series {
			a, ok := buckets[i]
			if !ok {
				series[i] = SeriesPoint{Success: 1}
				continue
			}
			series[i] = SeriesPoint{
				Median:  a.hist.Quantile(0.5),
				P99:     a.hist.Quantile(0.99),
				Count:   a.count,
				Success: float64(a.success) / float64(a.count),
			}
		}
		out.Series[key] = series
	}
	return out
}

// Keys returns the extraction's group keys, sorted.
func (e *Extraction) Keys() []string {
	out := make([]string, 0, len(e.Series))
	for k := range e.Series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Summary aggregates one key's series into overall stats (count-weighted).
func (e *Extraction) Summary(key string) (median, p99 time.Duration, count int, ok bool) {
	series, found := e.Series[key]
	if !found {
		return 0, 0, 0, false
	}
	// Exact recomputation is not possible from the points alone;
	// approximate with count-weighted medians of the per-bucket
	// quantiles, which is how the paper's per-minute plots summarise too.
	var meds, tails []wqPair
	for _, pt := range series {
		if pt.Count == 0 {
			continue
		}
		count += pt.Count
		meds = append(meds, wqPair{pt.Median, pt.Count})
		tails = append(tails, wqPair{pt.P99, pt.Count})
	}
	if count == 0 {
		return 0, 0, 0, true
	}
	median = weightedMedian(meds, count)
	p99 = weightedMedian(tails, count)
	return median, p99, count, true
}

func weightedMedian(values []wqPair, total int) time.Duration {
	sort.Slice(values, func(i, j int) bool { return values[i].v < values[j].v })
	half := total / 2
	seen := 0
	for _, x := range values {
		seen += x.n
		if seen >= half {
			return x.v
		}
	}
	if len(values) == 0 {
		return 0
	}
	return values[len(values)-1].v
}

// wqPair mirrors the local struct in Summary for the helper's signature.
type wqPair = struct {
	v time.Duration
	n int
}

// String describes the extraction.
func (e *Extraction) String() string {
	return fmt.Sprintf("extraction{keys=%d bucket=%v}", len(e.Series), e.BucketWidth)
}

// RecordSpan implements the mesh's SpanRecorder hook.
func (r *Recorder) RecordSpan(service, backendName, src string, start, end, serverDuration time.Duration, success bool) {
	r.Record(Span{
		Service:        service,
		Backend:        backendName,
		Src:            src,
		Start:          start,
		End:            end,
		ServerDuration: serverDuration,
		Success:        success,
	})
}
