// Sharded span collection: one single-writer buffer per source cluster plus
// a canonical merge, so span recording works under the sharded engine
// without locks on the hot path and yields the same trace for every worker
// count.
package tracing

import "sort"

// ShardedRecorder collects spans from a sharded mesh: one Recorder per
// source cluster, each private to that cluster's shard timeline (spans
// record where the request originated — mesh finish runs on the source
// shard). Wire each buffer with mesh.SetShardSpanRecorder(cluster,
// sr.For(cluster)).
//
// The merged view is canonical: buffers concatenate in the fixed cluster
// order and then stable-sort by span start time, so ties keep cluster
// order. Each buffer's content is a pure function of the seed, which makes
// the merged trace byte-identical at any -shards worker count.
type ShardedRecorder struct {
	clusters []string
	recs     []*Recorder
	byName   map[string]*Recorder
}

// NewShardedRecorder returns a recorder set over the given clusters in
// canonical (shard) order; limit caps each per-cluster buffer as in
// NewRecorder.
func NewShardedRecorder(clusters []string, limit int) *ShardedRecorder {
	sr := &ShardedRecorder{
		clusters: append([]string(nil), clusters...),
		recs:     make([]*Recorder, len(clusters)),
		byName:   make(map[string]*Recorder, len(clusters)),
	}
	for i, cl := range clusters {
		sr.recs[i] = NewRecorder(limit)
		sr.byName[cl] = sr.recs[i]
	}
	return sr
}

// For returns the cluster's private buffer (nil for unknown clusters) — the
// value to install as that shard's mesh span recorder.
func (sr *ShardedRecorder) For(cluster string) *Recorder { return sr.byName[cluster] }

// Len returns the total spans stored across buffers.
func (sr *ShardedRecorder) Len() int {
	n := 0
	for _, r := range sr.recs {
		n += r.Len()
	}
	return n
}

// Dropped returns the total spans dropped across buffers.
func (sr *ShardedRecorder) Dropped() uint64 {
	var n uint64
	for _, r := range sr.recs {
		n += r.Dropped()
	}
	return n
}

// Spans returns the canonical merged trace: per-cluster buffers in cluster
// order, stable-sorted by start time. The result feeds Extract exactly like
// a classic Recorder's Spans.
func (sr *ShardedRecorder) Spans() []Span {
	var out []Span
	for _, r := range sr.recs {
		out = append(out, r.Spans()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
