package tracing

import (
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/wan"
)

func span(backendName string, start, client, server time.Duration, ok bool) Span {
	return Span{
		Service: "svc", Backend: backendName, Src: "cluster-1",
		Start: start, End: start + client, ServerDuration: server, Success: ok,
	}
}

func TestSpanDurations(t *testing.T) {
	sp := span("b", time.Second, 30*time.Millisecond, 20*time.Millisecond, true)
	if sp.ClientDuration() != 30*time.Millisecond {
		t.Fatalf("ClientDuration = %v", sp.ClientDuration())
	}
	if sp.NetworkDelay() != 10*time.Millisecond {
		t.Fatalf("NetworkDelay = %v", sp.NetworkDelay())
	}
	// Malformed span (server > client) clamps to zero network.
	bad := span("b", 0, 10*time.Millisecond, 20*time.Millisecond, true)
	if bad.NetworkDelay() != 0 {
		t.Fatalf("negative network not clamped: %v", bad.NetworkDelay())
	}
}

func TestRecorderCapAndDrops(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(span("b", 0, time.Millisecond, time.Millisecond, true))
	}
	if r.Len() != 2 || r.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	spans := r.Spans()
	spans[0].Backend = "mutated"
	if r.Spans()[0].Backend == "mutated" {
		t.Fatal("Spans aliases internal storage")
	}
}

func TestExtractSeparatesNetworkFromExecution(t *testing.T) {
	var spans []Span
	for i := 0; i < 200; i++ {
		// 20ms execution + 10ms network, spread over 4 seconds.
		spans = append(spans, span("b", time.Duration(i)*20*time.Millisecond,
			30*time.Millisecond, 20*time.Millisecond, true))
	}
	exec := Extract(spans, time.Second, ExecutionOnly, nil)
	client := Extract(spans, time.Second, ClientObserved, nil)

	em, ep, n, ok := exec.Summary("b")
	if !ok || n != 200 {
		t.Fatalf("exec summary: n=%d ok=%v", n, ok)
	}
	if em < 19*time.Millisecond || em > 21*time.Millisecond {
		t.Fatalf("execution median = %v, want ~20ms (network excluded)", em)
	}
	cm, _, _, _ := client.Summary("b")
	if cm < 29*time.Millisecond || cm > 31*time.Millisecond {
		t.Fatalf("client median = %v, want ~30ms (network included)", cm)
	}
	if ep < em {
		t.Fatalf("p99 %v below median %v", ep, em)
	}
}

func TestExtractBucketsAndGaps(t *testing.T) {
	spans := []Span{
		span("b", 500*time.Millisecond, 10*time.Millisecond, 10*time.Millisecond, true),
		span("b", 2500*time.Millisecond, 10*time.Millisecond, 10*time.Millisecond, false),
	}
	e := Extract(spans, time.Second, ExecutionOnly, nil)
	series := e.Series["b"]
	if len(series) != 3 {
		t.Fatalf("series length = %d, want 3", len(series))
	}
	if series[0].Count != 1 || series[1].Count != 0 || series[2].Count != 1 {
		t.Fatalf("bucket counts = %+v", series)
	}
	if series[1].Success != 1 {
		t.Fatal("empty bucket should default to success 1")
	}
	if series[2].Success != 0 {
		t.Fatalf("failed span bucket success = %v", series[2].Success)
	}
}

func TestExtractCustomKey(t *testing.T) {
	spans := []Span{
		span("b1", 0, time.Millisecond, time.Millisecond, true),
		span("b2", 0, time.Millisecond, time.Millisecond, true),
	}
	spans[0].Src = "cluster-1"
	spans[1].Src = "cluster-2"
	e := Extract(spans, time.Second, ExecutionOnly, func(s Span) string { return s.Src })
	keys := e.Keys()
	if len(keys) != 2 || keys[0] != "cluster-1" || keys[1] != "cluster-2" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestExtractSummaryUnknownKey(t *testing.T) {
	e := Extract(nil, time.Second, ExecutionOnly, nil)
	if _, _, _, ok := e.Summary("nope"); ok {
		t.Fatal("unknown key reported ok")
	}
}

func TestMeshIntegrationSpansMatchModel(t *testing.T) {
	engine := sim.NewEngine()
	m := mesh.New(engine, sim.NewRand(1), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	rec := NewRecorder(0)
	m.SetSpanRecorder(rec)
	_, _ = m.AddService("api")
	_, _ = m.AddBackend("api", "api-c2", "cluster-2", backend.Config{},
		func(time.Duration, *sim.Rand) (time.Duration, bool) { return 50 * time.Millisecond, true })
	for i := 0; i < 20; i++ {
		engine.After(time.Duration(i)*100*time.Millisecond, func() {
			_ = m.Call("cluster-1", "api", func(mesh.Result) {})
		})
	}
	engine.RunUntil(time.Minute)

	spans := rec.Spans()
	if len(spans) != 20 {
		t.Fatalf("recorded %d spans, want 20", len(spans))
	}
	for _, sp := range spans {
		if sp.ServerDuration != 50*time.Millisecond {
			t.Fatalf("server duration = %v, want the modelled 50ms", sp.ServerDuration)
		}
		// Cross-cluster: network must be present and plausible (~10ms RTT).
		if nd := sp.NetworkDelay(); nd < 3*time.Millisecond || nd > 30*time.Millisecond {
			t.Fatalf("network delay = %v, want ~10ms", nd)
		}
		if sp.Src != "cluster-1" || sp.Backend != "api-c2" || !sp.Success {
			t.Fatalf("span fields: %+v", sp)
		}
	}

	// The extraction recovers the modelled execution time, excluding the
	// WAN — exactly the paper's §5.1 step.
	e := Extract(spans, time.Second, ExecutionOnly, nil)
	med, _, _, ok := e.Summary("api-c2")
	if !ok || med != 50*time.Millisecond {
		t.Fatalf("extracted execution median = %v, want exactly 50ms", med)
	}
}
