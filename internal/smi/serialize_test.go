package smi

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	orig := split()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back TrafficSplit
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.RootService != orig.RootService {
		t.Fatalf("round trip lost metadata: %+v", back)
	}
	if len(back.Backends) != 2 || back.Backends[0] != orig.Backends[0] {
		t.Fatalf("round trip lost backends: %+v", back.Backends)
	}
}

func TestMarshalShape(t *testing.T) {
	data, err := json.Marshal(split())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`"apiVersion":"split.smi-spec.io/v1alpha4"`,
		`"kind":"TrafficSplit"`,
		`"metadata":{"name":"books"}`,
		`"service":"books.default.svc"`,
		`"weight":500`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("manifest missing %s:\n%s", want, s)
		}
	}
}

func TestUnmarshalKubernetesManifest(t *testing.T) {
	doc := `{
	  "apiVersion": "split.smi-spec.io/v1alpha4",
	  "kind": "TrafficSplit",
	  "metadata": {"name": "books"},
	  "spec": {
	    "service": "books.default.svc.cluster.local",
	    "backends": [
	      {"service": "books-east", "weight": 900},
	      {"service": "books-west", "weight": 100}
	    ]
	  }
	}`
	var ts TrafficSplit
	if err := json.Unmarshal([]byte(doc), &ts); err != nil {
		t.Fatal(err)
	}
	if ts.TotalWeight() != 1000 || ts.Backends[0].Service != "books-east" {
		t.Fatalf("parsed: %+v", ts)
	}
}

func TestUnmarshalRejectsWrongTypeMeta(t *testing.T) {
	var ts TrafficSplit
	if err := json.Unmarshal([]byte(`{"apiVersion":"v1","kind":"TrafficSplit"}`), &ts); err == nil {
		t.Fatal("wrong apiVersion accepted")
	}
	if err := json.Unmarshal([]byte(`{"kind":"Service"}`), &ts); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestUnmarshalValidates(t *testing.T) {
	doc := `{"metadata":{"name":"x"},"spec":{"service":"s","backends":[{"service":"a","weight":-5}]}}`
	var ts TrafficSplit
	err := json.Unmarshal([]byte(doc), &ts)
	if !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("err = %v, want ErrNegativeWeight", err)
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	var ts TrafficSplit
	if err := json.Unmarshal([]byte(`{`), &ts); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestUnmarshalDoesNotMutateOnError(t *testing.T) {
	ts := *split()
	bad := `{"metadata":{"name":""},"spec":{"service":"s","backends":[{"service":"a","weight":1}]}}`
	if err := json.Unmarshal([]byte(bad), &ts); err == nil {
		t.Fatal("invalid manifest accepted")
	}
	if ts.Name != "books" {
		t.Fatal("failed unmarshal clobbered the receiver")
	}
}
