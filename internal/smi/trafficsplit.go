// Package smi implements the slice of the Service Mesh Interface standard
// that L3 is built on: the TrafficSplit resource (split.smi-spec.io
// v1alpha4). A TrafficSplit declares how traffic addressed to a root
// service is distributed across backend services; the ratio between backend
// weights is the ratio of traffic each receives. L3's whole write-side is
// "update the weights of a TrafficSplit"; the mesh data plane's read-side is
// "pick a backend proportionally to the current weights".
package smi

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"l3/internal/cluster"
)

// Backend is one weighted target service of a TrafficSplit. In a
// multi-cluster deployment each backend names the service export of one
// cluster (e.g. "books-east", "books-west").
type Backend struct {
	// Service is the backend service name, unique within the split.
	Service string
	// Weight is a non-negative integer; traffic is distributed
	// proportionally to the weights. All-zero weights mean the split is
	// inert and the data plane falls back to uniform selection.
	Weight int64
}

// TrafficSplit is the SMI traffic-split resource.
type TrafficSplit struct {
	// Name identifies the split (metadata.name).
	Name string
	// RootService is the FQDN clients address (spec.service).
	RootService string
	// Backends are the weighted targets (spec.backends).
	Backends []Backend
}

// ObjectName implements cluster.Object.
func (ts *TrafficSplit) ObjectName() string { return ts.Name }

// Clone returns a deep copy, so mutations of the copy never alias stored
// state.
func (ts *TrafficSplit) Clone() *TrafficSplit {
	c := &TrafficSplit{Name: ts.Name, RootService: ts.RootService}
	c.Backends = make([]Backend, len(ts.Backends))
	copy(c.Backends, ts.Backends)
	return c
}

// TotalWeight returns the sum of all backend weights.
func (ts *TrafficSplit) TotalWeight() int64 {
	var sum int64
	for _, b := range ts.Backends {
		sum += b.Weight
	}
	return sum
}

// BackendNames returns the backend service names in declaration order.
func (ts *TrafficSplit) BackendNames() []string {
	out := make([]string, len(ts.Backends))
	for i, b := range ts.Backends {
		out[i] = b.Service
	}
	return out
}

// SetWeight updates one backend's weight in place. It returns false if the
// backend is not part of the split.
func (ts *TrafficSplit) SetWeight(service string, weight int64) bool {
	for i := range ts.Backends {
		if ts.Backends[i].Service == service {
			if weight < 0 {
				weight = 0
			}
			ts.Backends[i].Weight = weight
			return true
		}
	}
	return false
}

// String renders the split compactly for logs.
func (ts *TrafficSplit) String() string {
	parts := make([]string, len(ts.Backends))
	for i, b := range ts.Backends {
		parts[i] = fmt.Sprintf("%s=%d", b.Service, b.Weight)
	}
	sort.Strings(parts)
	return fmt.Sprintf("trafficsplit/%s[%s -> %s]", ts.Name, ts.RootService, strings.Join(parts, ","))
}

// Validation errors.
var (
	ErrNoName         = errors.New("smi: traffic split has no name")
	ErrNoRootService  = errors.New("smi: traffic split has no root service")
	ErrNoBackends     = errors.New("smi: traffic split has no backends")
	ErrNegativeWeight = errors.New("smi: backend weight is negative")
	ErrDuplicate      = errors.New("smi: duplicate backend service")
)

// Validate checks structural invariants required by the SMI spec.
func (ts *TrafficSplit) Validate() error {
	if ts.Name == "" {
		return ErrNoName
	}
	if ts.RootService == "" {
		return ErrNoRootService
	}
	if len(ts.Backends) == 0 {
		return ErrNoBackends
	}
	seen := make(map[string]bool, len(ts.Backends))
	for _, b := range ts.Backends {
		if b.Weight < 0 {
			return fmt.Errorf("%w: %s=%d", ErrNegativeWeight, b.Service, b.Weight)
		}
		if seen[b.Service] {
			return fmt.Errorf("%w: %s", ErrDuplicate, b.Service)
		}
		seen[b.Service] = true
	}
	return nil
}

// Store is a validating store of TrafficSplits with watch support. Objects
// are stored and returned by value semantics: every read hands out a clone,
// so callers can mutate freely and write back via Update.
type Store struct {
	inner *cluster.Store[*TrafficSplit]
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{inner: cluster.NewStore[*TrafficSplit]()}
}

// Create validates and inserts a split.
func (s *Store) Create(ts *TrafficSplit) error {
	if err := ts.Validate(); err != nil {
		return err
	}
	return s.inner.Create(ts.Clone())
}

// Update validates and replaces a split.
func (s *Store) Update(ts *TrafficSplit) error {
	if err := ts.Validate(); err != nil {
		return err
	}
	return s.inner.Update(ts.Clone())
}

// Delete removes a split by name.
func (s *Store) Delete(name string) error { return s.inner.Delete(name) }

// Get returns a clone of the named split.
func (s *Store) Get(name string) (*TrafficSplit, bool) {
	ts, _, ok := s.inner.Get(name)
	if !ok {
		return nil, false
	}
	return ts.Clone(), true
}

// List returns clones of all splits, sorted by name.
func (s *Store) List() []*TrafficSplit {
	stored := s.inner.List()
	out := make([]*TrafficSplit, len(stored))
	for i, ts := range stored {
		out[i] = ts.Clone()
	}
	return out
}

// Len returns the number of stored splits.
func (s *Store) Len() int { return s.inner.Len() }

// Watch registers fn for mutation events (cloned objects). With replay, fn
// first receives synthetic Added events for existing splits.
func (s *Store) Watch(replay bool, fn func(cluster.Event[*TrafficSplit])) (cancel func()) {
	return s.inner.Watch(replay, func(e cluster.Event[*TrafficSplit]) {
		fn(cluster.Event[*TrafficSplit]{Type: e.Type, Object: e.Object.Clone()})
	})
}
