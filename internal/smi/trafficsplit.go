// Package smi implements the slice of the Service Mesh Interface standard
// that L3 is built on: the TrafficSplit resource (split.smi-spec.io
// v1alpha4). A TrafficSplit declares how traffic addressed to a root
// service is distributed across backend services; the ratio between backend
// weights is the ratio of traffic each receives. L3's whole write-side is
// "update the weights of a TrafficSplit"; the mesh data plane's read-side is
// "pick a backend proportionally to the current weights".
package smi

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"l3/internal/cluster"
)

// Backend is one weighted target service of a TrafficSplit. In a
// multi-cluster deployment each backend names the service export of one
// cluster (e.g. "books-east", "books-west").
type Backend struct {
	// Service is the backend service name, unique within the split.
	Service string
	// Weight is a non-negative integer; traffic is distributed
	// proportionally to the weights. All-zero weights mean the split is
	// inert and the data plane falls back to uniform selection.
	Weight int64
}

// TrafficSplit is the SMI traffic-split resource.
type TrafficSplit struct {
	// Name identifies the split (metadata.name).
	Name string
	// RootService is the FQDN clients address (spec.service).
	RootService string
	// Backends are the weighted targets (spec.backends).
	Backends []Backend
}

// ObjectName implements cluster.Object.
func (ts *TrafficSplit) ObjectName() string { return ts.Name }

// Clone returns a deep copy, so mutations of the copy never alias stored
// state.
func (ts *TrafficSplit) Clone() *TrafficSplit {
	c := &TrafficSplit{Name: ts.Name, RootService: ts.RootService}
	c.Backends = make([]Backend, len(ts.Backends))
	copy(c.Backends, ts.Backends)
	return c
}

// TotalWeight returns the sum of all backend weights.
func (ts *TrafficSplit) TotalWeight() int64 {
	var sum int64
	for _, b := range ts.Backends {
		sum += b.Weight
	}
	return sum
}

// BackendNames returns the backend service names in declaration order.
func (ts *TrafficSplit) BackendNames() []string {
	out := make([]string, len(ts.Backends))
	for i, b := range ts.Backends {
		out[i] = b.Service
	}
	return out
}

// SetWeight updates one backend's weight in place. Unlike the historical
// behaviour (silently clamping negatives to zero), invalid writes are an
// explicit error: a negative weight returns ErrNegativeWeight and an unknown
// backend returns ErrUnknownBackend, both without mutating the split.
func (ts *TrafficSplit) SetWeight(service string, weight int64) error {
	if weight < 0 {
		return fmt.Errorf("%w: %s=%d", ErrNegativeWeight, service, weight)
	}
	for i := range ts.Backends {
		if ts.Backends[i].Service == service {
			ts.Backends[i].Weight = weight
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrUnknownBackend, service)
}

// ApplyWeights replaces the weights of every named backend atomically: the
// whole vector is validated first (non-negative, all backends present) and
// the split is only mutated when every entry is applicable. Backends of the
// split absent from w keep their weight.
func (ts *TrafficSplit) ApplyWeights(w map[string]int64) error {
	idx := make(map[string]int, len(ts.Backends))
	for i, b := range ts.Backends {
		idx[b.Service] = i
	}
	for svc, weight := range w {
		if weight < 0 {
			return fmt.Errorf("%w: %s=%d", ErrNegativeWeight, svc, weight)
		}
		if _, ok := idx[svc]; !ok {
			return fmt.Errorf("%w: %s", ErrUnknownBackend, svc)
		}
	}
	for svc, weight := range w {
		ts.Backends[idx[svc]].Weight = weight
	}
	return nil
}

// CheckScaledSum asserts the integer-scaling sum invariant: a weight vector
// produced by ScaleWeights(…, scale) totals scale up to one rounding unit
// per backend. A larger drift means the vector was not share-preserving.
func (ts *TrafficSplit) CheckScaledSum(scale int64) error {
	drift := ts.TotalWeight() - scale
	if drift < 0 {
		drift = -drift
	}
	if drift > int64(len(ts.Backends)) {
		return fmt.Errorf("%w: total %d vs scale %d (tolerance %d)",
			ErrWeightSum, ts.TotalWeight(), scale, len(ts.Backends))
	}
	return nil
}

// ScaleWeights converts a float weight vector to TrafficSplit integers while
// preserving shares: weights are normalised, multiplied by scale, rounded,
// and floored at 1 so every backend stays measurable. NaN, ±Inf and negative
// inputs are rejected (ErrWeightNotFinite / ErrNegativeWeight), as is a
// vector with no positive mass.
func ScaleWeights(weights map[string]float64, scale int64) (map[string]int64, error) {
	if scale <= 0 {
		scale = 1000
	}
	var sum float64
	for svc, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: %s=%v", ErrWeightNotFinite, svc, w)
		}
		if w < 0 {
			return nil, fmt.Errorf("%w: %s=%v", ErrNegativeWeight, svc, w)
		}
		sum += w
	}
	if len(weights) == 0 || sum <= 0 {
		return nil, fmt.Errorf("%w: no positive weight mass", ErrWeightSum)
	}
	out := make(map[string]int64, len(weights))
	var total int64
	for svc, w := range weights {
		v := int64(math.Round(w / sum * float64(scale)))
		if v < 1 {
			v = 1
		}
		out[svc] = v
		total += v
	}
	// Integer-scaling sum invariant: rounding moves the total by at most one
	// half-unit per backend, the floor by at most one unit per backend.
	drift := total - scale
	if drift < 0 {
		drift = -drift
	}
	if drift > int64(len(weights)) {
		return nil, fmt.Errorf("%w: scaled total %d vs scale %d", ErrWeightSum, total, scale)
	}
	return out, nil
}

// String renders the split compactly for logs.
func (ts *TrafficSplit) String() string {
	parts := make([]string, len(ts.Backends))
	for i, b := range ts.Backends {
		parts[i] = fmt.Sprintf("%s=%d", b.Service, b.Weight)
	}
	sort.Strings(parts)
	return fmt.Sprintf("trafficsplit/%s[%s -> %s]", ts.Name, ts.RootService, strings.Join(parts, ","))
}

// Validation errors.
var (
	ErrNoName         = errors.New("smi: traffic split has no name")
	ErrNoRootService  = errors.New("smi: traffic split has no root service")
	ErrNoBackends     = errors.New("smi: traffic split has no backends")
	ErrNegativeWeight = errors.New("smi: backend weight is negative")
	ErrDuplicate      = errors.New("smi: duplicate backend service")
	// ErrUnknownBackend rejects a weight write addressing a service that is
	// not part of the split.
	ErrUnknownBackend = errors.New("smi: unknown backend service")
	// ErrWeightNotFinite rejects NaN or infinite float weights before they
	// can reach integer scaling (int64(NaN) is platform-defined).
	ErrWeightNotFinite = errors.New("smi: weight is not finite")
	// ErrWeightSum rejects weight vectors violating the integer-scaling sum
	// invariant (scaled totals must stay within one unit per backend of the
	// scale).
	ErrWeightSum = errors.New("smi: weight sum invariant violated")
)

// Validate checks structural invariants required by the SMI spec.
func (ts *TrafficSplit) Validate() error {
	if ts.Name == "" {
		return ErrNoName
	}
	if ts.RootService == "" {
		return ErrNoRootService
	}
	if len(ts.Backends) == 0 {
		return ErrNoBackends
	}
	seen := make(map[string]bool, len(ts.Backends))
	for _, b := range ts.Backends {
		if b.Weight < 0 {
			return fmt.Errorf("%w: %s=%d", ErrNegativeWeight, b.Service, b.Weight)
		}
		if seen[b.Service] {
			return fmt.Errorf("%w: %s", ErrDuplicate, b.Service)
		}
		seen[b.Service] = true
	}
	return nil
}

// Store is a validating store of TrafficSplits with watch support. Objects
// are stored and returned by value semantics: every read hands out a clone,
// so callers can mutate freely and write back via Update.
type Store struct {
	inner *cluster.Store[*TrafficSplit]
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{inner: cluster.NewStore[*TrafficSplit]()}
}

// Create validates and inserts a split.
func (s *Store) Create(ts *TrafficSplit) error {
	if err := ts.Validate(); err != nil {
		return err
	}
	return s.inner.Create(ts.Clone())
}

// Update validates and replaces a split.
func (s *Store) Update(ts *TrafficSplit) error {
	if err := ts.Validate(); err != nil {
		return err
	}
	return s.inner.Update(ts.Clone())
}

// Delete removes a split by name.
func (s *Store) Delete(name string) error { return s.inner.Delete(name) }

// Get returns a clone of the named split.
func (s *Store) Get(name string) (*TrafficSplit, bool) {
	ts, _, ok := s.inner.Get(name)
	if !ok {
		return nil, false
	}
	return ts.Clone(), true
}

// List returns clones of all splits, sorted by name.
func (s *Store) List() []*TrafficSplit {
	stored := s.inner.List()
	out := make([]*TrafficSplit, len(stored))
	for i, ts := range stored {
		out[i] = ts.Clone()
	}
	return out
}

// Len returns the number of stored splits.
func (s *Store) Len() int { return s.inner.Len() }

// Watch registers fn for mutation events (cloned objects). With replay, fn
// first receives synthetic Added events for existing splits.
func (s *Store) Watch(replay bool, fn func(cluster.Event[*TrafficSplit])) (cancel func()) {
	return s.inner.Watch(replay, func(e cluster.Event[*TrafficSplit]) {
		fn(cluster.Event[*TrafficSplit]{Type: e.Type, Object: e.Object.Clone()})
	})
}
