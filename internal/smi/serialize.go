package smi

import (
	"encoding/json"
	"fmt"
)

// The SMI TrafficSplit wire format (split.smi-spec.io/v1alpha4), so splits
// round-trip to the manifests a Kubernetes deployment of L3 would read and
// write.
const (
	APIVersion = "split.smi-spec.io/v1alpha4"
	Kind       = "TrafficSplit"
)

// manifest is the Kubernetes-shaped JSON document.
type manifest struct {
	APIVersion string       `json:"apiVersion"`
	Kind       string       `json:"kind"`
	Metadata   metadata     `json:"metadata"`
	Spec       manifestSpec `json:"spec"`
}

type metadata struct {
	Name string `json:"name"`
}

type manifestSpec struct {
	Service  string            `json:"service"`
	Backends []manifestBackend `json:"backends"`
}

type manifestBackend struct {
	Service string `json:"service"`
	Weight  int64  `json:"weight"`
}

// MarshalJSON renders the split as an SMI v1alpha4 manifest.
func (ts *TrafficSplit) MarshalJSON() ([]byte, error) {
	m := manifest{
		APIVersion: APIVersion,
		Kind:       Kind,
		Metadata:   metadata{Name: ts.Name},
		Spec:       manifestSpec{Service: ts.RootService},
	}
	for _, b := range ts.Backends {
		m.Spec.Backends = append(m.Spec.Backends, manifestBackend{Service: b.Service, Weight: b.Weight})
	}
	return json.Marshal(m)
}

// UnmarshalJSON parses an SMI v1alpha4 manifest. The apiVersion and kind
// are validated when present; the result is additionally checked with
// Validate.
func (ts *TrafficSplit) UnmarshalJSON(data []byte) error {
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("smi: parse traffic split: %w", err)
	}
	if m.APIVersion != "" && m.APIVersion != APIVersion {
		return fmt.Errorf("smi: unsupported apiVersion %q (want %s)", m.APIVersion, APIVersion)
	}
	if m.Kind != "" && m.Kind != Kind {
		return fmt.Errorf("smi: unexpected kind %q (want %s)", m.Kind, Kind)
	}
	out := TrafficSplit{
		Name:        m.Metadata.Name,
		RootService: m.Spec.Service,
	}
	for _, b := range m.Spec.Backends {
		out.Backends = append(out.Backends, Backend{Service: b.Service, Weight: b.Weight})
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*ts = out
	return nil
}
