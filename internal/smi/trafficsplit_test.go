package smi

import (
	"errors"
	"testing"

	"l3/internal/cluster"
)

func split() *TrafficSplit {
	return &TrafficSplit{
		Name:        "books",
		RootService: "books.default.svc",
		Backends: []Backend{
			{Service: "books-east", Weight: 500},
			{Service: "books-west", Weight: 500},
		},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := split().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*TrafficSplit)
		want   error
	}{
		{"no name", func(ts *TrafficSplit) { ts.Name = "" }, ErrNoName},
		{"no root", func(ts *TrafficSplit) { ts.RootService = "" }, ErrNoRootService},
		{"no backends", func(ts *TrafficSplit) { ts.Backends = nil }, ErrNoBackends},
		{"negative weight", func(ts *TrafficSplit) { ts.Backends[0].Weight = -1 }, ErrNegativeWeight},
		{"duplicate backend", func(ts *TrafficSplit) { ts.Backends[1].Service = ts.Backends[0].Service }, ErrDuplicate},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ts := split()
			tt.mutate(ts)
			if err := ts.Validate(); !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestTotalWeightAndNames(t *testing.T) {
	ts := split()
	if ts.TotalWeight() != 1000 {
		t.Fatalf("TotalWeight = %d", ts.TotalWeight())
	}
	names := ts.BackendNames()
	if len(names) != 2 || names[0] != "books-east" || names[1] != "books-west" {
		t.Fatalf("BackendNames = %v", names)
	}
}

func TestSetWeight(t *testing.T) {
	ts := split()
	if err := ts.SetWeight("books-west", 123); err != nil {
		t.Fatalf("SetWeight of existing backend failed: %v", err)
	}
	if ts.Backends[1].Weight != 123 {
		t.Fatalf("weight = %d", ts.Backends[1].Weight)
	}
	if err := ts.SetWeight("missing", 1); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("SetWeight of unknown backend: err = %v, want ErrUnknownBackend", err)
	}
	before := ts.Backends[0].Weight
	if err := ts.SetWeight("books-east", -5); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("negative SetWeight: err = %v, want ErrNegativeWeight", err)
	}
	if ts.Backends[0].Weight != before {
		t.Fatalf("rejected write mutated the split: %d", ts.Backends[0].Weight)
	}
}

func TestCloneIsDeep(t *testing.T) {
	ts := split()
	c := ts.Clone()
	c.Backends[0].Weight = 9999
	if ts.Backends[0].Weight == 9999 {
		t.Fatal("Clone shares backend storage")
	}
}

func TestStoreValueSemantics(t *testing.T) {
	s := NewStore()
	ts := split()
	if err := s.Create(ts); err != nil {
		t.Fatal(err)
	}
	ts.Backends[0].Weight = 7 // mutate caller copy after Create
	got, ok := s.Get("books")
	if !ok {
		t.Fatal("Get failed")
	}
	if got.Backends[0].Weight != 500 {
		t.Fatal("Create aliased caller memory")
	}
	got.Backends[0].Weight = 8 // mutate read copy
	again, _ := s.Get("books")
	if again.Backends[0].Weight != 500 {
		t.Fatal("Get handed out aliased memory")
	}
}

func TestStoreRejectsInvalid(t *testing.T) {
	s := NewStore()
	bad := split()
	bad.Backends = nil
	if err := s.Create(bad); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("Create invalid err = %v", err)
	}
	_ = s.Create(split())
	bad2 := split()
	bad2.Backends[0].Weight = -1
	if err := s.Update(bad2); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("Update invalid err = %v", err)
	}
}

func TestStoreUpdateDeleteList(t *testing.T) {
	s := NewStore()
	_ = s.Create(split())
	ts, _ := s.Get("books")
	ts.SetWeight("books-east", 900)
	if err := s.Update(ts); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("books")
	if got.Backends[0].Weight != 900 {
		t.Fatalf("update not visible: %d", got.Backends[0].Weight)
	}
	other := split()
	other.Name = "another"
	_ = s.Create(other)
	if s.Len() != 2 || len(s.List()) != 2 {
		t.Fatalf("Len/List = %d/%d", s.Len(), len(s.List()))
	}
	if s.List()[0].Name != "another" {
		t.Fatal("List not sorted by name")
	}
	if err := s.Delete("books"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("books"); ok {
		t.Fatal("deleted split still readable")
	}
}

func TestStoreWatchDeliversClones(t *testing.T) {
	s := NewStore()
	var seen *TrafficSplit
	s.Watch(false, func(e cluster.Event[*TrafficSplit]) { seen = e.Object })
	_ = s.Create(split())
	if seen == nil {
		t.Fatal("watch not notified")
	}
	seen.Backends[0].Weight = 12345
	got, _ := s.Get("books")
	if got.Backends[0].Weight != 500 {
		t.Fatal("watch event aliases stored object")
	}
}

func TestStringFormat(t *testing.T) {
	got := split().String()
	want := "trafficsplit/books[books.default.svc -> books-east=500,books-west=500]"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
