package wan

import (
	"testing"
	"time"
)

func TestIntraClusterDelayIsLocal(t *testing.T) {
	m := New(DefaultConfig())
	d := m.OneWayDelay("c1", "c1", 5*time.Second)
	if d != 500*time.Microsecond {
		t.Fatalf("local delay = %v, want 500µs", d)
	}
	if m.BaseRTT("c1", "c1") != time.Millisecond {
		t.Fatalf("local RTT = %v", m.BaseRTT("c1", "c1"))
	}
}

func TestInterClusterDelayNearBase(t *testing.T) {
	m := New(DefaultConfig())
	base := 5 * time.Millisecond // half of 10ms RTT
	for s := 0; s < 600; s++ {
		d := m.OneWayDelay("c1", "c2", time.Duration(s)*time.Second)
		if d < base/2 || d > base*3 {
			t.Fatalf("delay at %ds = %v, outside plausible band around %v", s, d, base)
		}
	}
}

func TestDelayIsDeterministic(t *testing.T) {
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	for s := 0; s < 100; s++ {
		ts := time.Duration(s) * 250 * time.Millisecond
		if a.OneWayDelay("c1", "c3", ts) != b.OneWayDelay("c1", "c3", ts) {
			t.Fatalf("delay not deterministic at %v", ts)
		}
	}
}

func TestDelayVariesOverTime(t *testing.T) {
	m := New(DefaultConfig())
	seen := make(map[time.Duration]bool)
	for s := 0; s < 120; s++ {
		seen[m.OneWayDelay("c1", "c2", time.Duration(s)*time.Second)] = true
	}
	if len(seen) < 20 {
		t.Fatalf("delay took only %d distinct values over 2 minutes; no variability", len(seen))
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfgA := DefaultConfig()
	cfgB := DefaultConfig()
	cfgB.Seed = 99
	a, b := New(cfgA), New(cfgB)
	same := 0
	for s := 0; s < 100; s++ {
		ts := time.Duration(s) * time.Second
		if a.OneWayDelay("c1", "c2", ts) == b.OneWayDelay("c1", "c2", ts) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("%d/100 identical delays across seeds", same)
	}
}

func TestLinkOverride(t *testing.T) {
	m := New(DefaultConfig(), WithLink("c1", "c2", 100*time.Millisecond))
	if m.BaseRTT("c1", "c2") != 100*time.Millisecond {
		t.Fatalf("override RTT = %v", m.BaseRTT("c1", "c2"))
	}
	// Unoverridden direction keeps the default.
	if m.BaseRTT("c2", "c1") != 10*time.Millisecond {
		t.Fatalf("reverse RTT = %v, want default", m.BaseRTT("c2", "c1"))
	}
	d := m.OneWayDelay("c1", "c2", time.Second)
	if d < 25*time.Millisecond {
		t.Fatalf("override delay = %v, want ~50ms scale", d)
	}
}

func TestLocalDelayOverride(t *testing.T) {
	m := New(DefaultConfig(), WithLocalDelay(2*time.Millisecond))
	if m.OneWayDelay("c1", "c1", 0) != 2*time.Millisecond {
		t.Fatal("local delay override ignored")
	}
}

func TestRTTIsSumOfOneWays(t *testing.T) {
	m := New(DefaultConfig())
	ts := 7 * time.Second
	want := m.OneWayDelay("c1", "c2", ts) + m.OneWayDelay("c2", "c1", ts)
	if got := m.RTT("c1", "c2", ts); got != want {
		t.Fatalf("RTT = %v, want %v", got, want)
	}
}

func TestDelayNeverBelowLocal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFraction = 5 // absurd jitter to push the delay negative
	m := New(cfg)
	for s := 0; s < 300; s++ {
		d := m.OneWayDelay("c1", "c2", time.Duration(s)*100*time.Millisecond)
		if d < 500*time.Microsecond {
			t.Fatalf("delay %v fell below the local floor", d)
		}
	}
}

func TestZeroConfigGetsDefaults(t *testing.T) {
	m := New(Config{})
	if m.BaseRTT("a", "b") != 10*time.Millisecond {
		t.Fatalf("BaseRTT = %v, want 10ms default", m.BaseRTT("a", "b"))
	}
}
