// Package wan models the wide-area network between clusters: a base
// round-trip-time matrix plus the two dynamics §2.1 of the paper calls out
// as sources of latency variability — links whose latency varies over time
// (Jin et al.) and inter-cluster routing paths that change every couple of
// seconds (Reda et al.).
//
// The model is deterministic: jitter and path shifts are derived from a
// seeded hash of (link, time epoch), so the same seed reproduces the same
// delay series without the model keeping per-query state.
//
// On top of the statistical dynamics, the model exposes structural fault
// hooks for chaos engineering (internal/chaos): a directed link can be
// partitioned (blackholed), given a fixed extra delay, or made to flap
// between its normal and degraded path. Fault state is the only mutable part
// of a Model and is guarded for concurrent use.
package wan

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Config parameterises a Model.
type Config struct {
	// BaseRTT is the symmetric base round-trip time between distinct
	// clusters when no explicit link override exists. The paper's testbed
	// measured ~10 ms between its EU regions.
	BaseRTT time.Duration
	// JitterFraction scales sinusoidal-plus-noise jitter relative to the
	// base RTT (0.2 means ±~20 %).
	JitterFraction float64
	// PathShiftInterval is how often a link may jump to a different
	// routing path (a couple of seconds per the paper's reference [45]).
	PathShiftInterval time.Duration
	// PathShiftFraction is the maximum extra delay a path change adds,
	// relative to base RTT.
	PathShiftFraction float64
	// Seed makes the jitter process reproducible.
	Seed uint64
}

// DefaultConfig mirrors the paper's testbed: ~10 ms inter-cluster RTT with
// moderate variability and path shifts every few seconds.
func DefaultConfig() Config {
	return Config{
		BaseRTT:           10 * time.Millisecond,
		JitterFraction:    0.2,
		PathShiftInterval: 3 * time.Second,
		PathShiftFraction: 0.5,
		Seed:              1,
	}
}

// Model answers "what is the one-way network delay from cluster A to
// cluster B at virtual time t". Intra-cluster delay is a small constant.
// Model is immutable after construction except for injected link faults, and
// safe for concurrent use.
type Model struct {
	cfg      Config
	overlays map[linkKey]time.Duration
	local    time.Duration

	mu     sync.RWMutex
	faults map[linkKey]linkFault
}

// linkFault is the injected structural state of one directed link.
type linkFault struct {
	extra       time.Duration
	partitioned bool
	flap        time.Duration
}

type linkKey struct{ from, to string }

// Option customises a Model.
type Option func(*Model)

// WithLink overrides the base RTT of one directed link.
func WithLink(from, to string, rtt time.Duration) Option {
	return func(m *Model) { m.overlays[linkKey{from, to}] = rtt }
}

// WithLocalDelay overrides the intra-cluster delay (default 500 µs,
// covering the node-local proxy hop the Linkerd benchmark study reports as
// sub-millisecond at the median).
func WithLocalDelay(d time.Duration) Option {
	return func(m *Model) { m.local = d }
}

// New returns a Model.
func New(cfg Config, opts ...Option) *Model {
	if cfg.BaseRTT <= 0 {
		cfg.BaseRTT = 10 * time.Millisecond
	}
	if cfg.PathShiftInterval <= 0 {
		cfg.PathShiftInterval = 3 * time.Second
	}
	m := &Model{
		cfg:      cfg,
		overlays: make(map[linkKey]time.Duration),
		local:    500 * time.Microsecond,
		faults:   make(map[linkKey]linkFault),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// BaseRTT returns the configured base round-trip time of a link.
func (m *Model) BaseRTT(from, to string) time.Duration {
	if from == to {
		return 2 * m.local
	}
	if d, ok := m.overlays[linkKey{from, to}]; ok {
		return d
	}
	return m.cfg.BaseRTT
}

// InjectLinkFault installs a structural fault on the directed link from→to,
// replacing any previous fault on it: extra is a fixed added one-way delay,
// partitioned blackholes the link entirely (Partitioned reports true and
// transit never completes), and a positive flap makes the extra delay apply
// only in alternating flap-length epochs — a routing path bouncing between a
// short and a long route. It implements the link-injector hook of
// internal/chaos.
func (m *Model) InjectLinkFault(from, to string, extra time.Duration, partitioned bool, flap time.Duration) {
	m.mu.Lock()
	m.faults[linkKey{from, to}] = linkFault{extra: extra, partitioned: partitioned, flap: flap}
	m.mu.Unlock()
}

// HealLinkFault removes any injected fault from the directed link from→to.
func (m *Model) HealLinkFault(from, to string) {
	m.mu.Lock()
	delete(m.faults, linkKey{from, to})
	m.mu.Unlock()
}

// Partitioned reports whether the directed link from→to is currently
// blackholed by an injected fault. Intra-cluster traffic never partitions.
func (m *Model) Partitioned(from, to string) bool {
	if from == to {
		return false
	}
	m.mu.RLock()
	f, ok := m.faults[linkKey{from, to}]
	m.mu.RUnlock()
	return ok && f.partitioned
}

// fault returns the injected fault of a link, if any.
func (m *Model) fault(from, to string) (linkFault, bool) {
	m.mu.RLock()
	f, ok := m.faults[linkKey{from, to}]
	m.mu.RUnlock()
	return f, ok
}

// OneWayDelay returns the one-way delay from cluster from to cluster to at
// virtual time t, including jitter and path-shift dynamics. Absent injected
// faults the value is a pure function of (from, to, t, seed).
func (m *Model) OneWayDelay(from, to string, t time.Duration) time.Duration {
	if from == to {
		return m.local
	}
	base := m.BaseRTT(from, to) / 2

	// Slow sinusoidal drift plus per-query hash noise.
	h := hash3(m.cfg.Seed, from, to)
	phase := float64(h%10000) / 10000 * 2 * math.Pi
	drift := math.Sin(2*math.Pi*t.Seconds()/60 + phase) // ±1 over a minute
	noise := hashUnit(h, uint64(t/time.Millisecond))*2 - 1

	jitter := m.cfg.JitterFraction * (0.7*drift + 0.3*noise)

	// Path shifts: every PathShiftInterval the link picks one of several
	// "paths" with distinct extra delay.
	epoch := uint64(t / m.cfg.PathShiftInterval)
	pathExtra := hashUnit(h^0xabcdef, epoch) * m.cfg.PathShiftFraction

	d := float64(base) * (1 + jitter + pathExtra)
	if d < float64(m.local) {
		d = float64(m.local)
	}
	if f, ok := m.fault(from, to); ok && f.extra > 0 {
		if f.flap <= 0 || uint64(t/f.flap)%2 == 0 {
			d += float64(f.extra)
		}
	}
	return time.Duration(d)
}

// MinOneWayDelay returns a lower bound on OneWayDelay over every
// cross-cluster link and every time — the conservative lookahead a sharded
// simulation (sim.ShardedEngine) may use when shards are keyed by cluster.
//
// The bound follows from the delay formula: jitter ≥ -JitterFraction (drift
// and noise both live in [-1, 1]), pathExtra ≥ 0, injected faults only add
// delay (a partitioned link never delivers at all), and every delay is
// clamped below at the intra-cluster constant. Hence
//
//	OneWayDelay ≥ max(local, (minBaseRTT/2) · (1 − JitterFraction))
//
// where minBaseRTT is the smallest base RTT across the default and every
// per-link overlay.
func (m *Model) MinOneWayDelay() time.Duration {
	minBase := m.cfg.BaseRTT
	for _, rtt := range m.overlays {
		if rtt < minBase {
			minBase = rtt
		}
	}
	frac := 1 - m.cfg.JitterFraction
	if frac < 0 {
		frac = 0
	}
	d := time.Duration(float64(minBase/2) * frac)
	if d < m.local {
		d = m.local
	}
	return d
}

// RTT returns the modelled round-trip time at t (forward + return delay).
func (m *Model) RTT(from, to string, t time.Duration) time.Duration {
	return m.OneWayDelay(from, to, t) + m.OneWayDelay(to, from, t)
}

// String describes the model briefly.
func (m *Model) String() string {
	return fmt.Sprintf("wan{base=%v jitter=%.0f%% shift=%v}",
		m.cfg.BaseRTT, m.cfg.JitterFraction*100, m.cfg.PathShiftInterval)
}

// hash3 mixes the seed with two strings (FNV-1a over both).
func hash3(seed uint64, a, b string) uint64 {
	h := seed ^ 14695981039346656037
	for _, s := range []string{a, "\x00", b} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	return h
}

// hashUnit maps (h, x) deterministically to [0, 1).
func hashUnit(h, x uint64) float64 {
	z := h ^ (x * 0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
