// Package l3 is the root of a reproduction of "L3: Latency-aware Load
// Balancing in Multi-Cluster Service Mesh" (Middleware '24).
//
// The implementation lives under internal/:
//
//   - internal/core holds the L3 controller (weight assigner, rate
//     controller, metrics collector).
//   - the remaining internal packages are the substrates the paper's
//     evaluation depends on: a discrete-event simulator, a Prometheus-style
//     metrics pipeline, a Kubernetes-flavoured object store with leader
//     election, an SMI TrafficSplit store, a multi-cluster mesh data plane,
//     scenario trace generators, the C3 baseline, a constant-throughput load
//     generator and the DeathStarBench hotel-reservation application model.
//
// See DESIGN.md for the system inventory and the per-figure experiment
// index, and EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every figure of the paper's evaluation; the same
// experiments are runnable via cmd/l3bench.
package l3
