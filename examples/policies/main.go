// Policies: the operator's declarative interface. §4 of the paper
// describes L3 as a Kubernetes operator "managing user-defined objects
// declaring desired latency optimizations"; here those objects are
// core.OptimizationPolicy. Two services run side by side:
//
//   - "checkout" gets a policy with the paper's defaults (P99, P = 600 ms);
//   - "search" gets a tail-obsessed policy (P99.9, PeakEWMA filter) — the
//     per-workload tuning §3.1 and the paper's future-work section call
//     for;
//   - "logs" has no policy and is deliberately left unmanaged.
//
// The example prints the per-service weight drift, showing that only
// declared workloads are steered, each under its own configuration, and
// that deleting a policy stops management live.
//
// Run with: go run ./examples/policies
package main

import (
	"fmt"
	"os"
	"time"

	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/core"
	"l3/internal/ewma"
	"l3/internal/loadgen"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/timeseries"
	"l3/internal/wan"
)

var services = []string{"checkout", "search", "logs"}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "policies:", err)
		os.Exit(1)
	}
}

func run() error {
	engine := sim.NewEngine()
	rng := sim.NewRand(21)
	m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())

	// Three services, each in three clusters; cluster-3 is slow for all.
	for _, svc := range services {
		if _, err := m.AddService(svc); err != nil {
			return err
		}
		var backends []smi.Backend
		for _, c := range []string{"cluster-1", "cluster-2", "cluster-3"} {
			med := 30 * time.Millisecond
			if c == "cluster-3" {
				med = 150 * time.Millisecond
			}
			dist := sim.NewLogNormalFromQuantiles(med, 4*med)
			name := svc + "-" + c
			if _, err := m.AddBackend(svc, name, c, backend.Config{},
				func(_ time.Duration, r *sim.Rand) (time.Duration, bool) {
					return dist.Sample(r), true
				}); err != nil {
				return err
			}
			backends = append(backends, smi.Backend{Service: name, Weight: 500})
		}
		if err := m.Splits().Create(&smi.TrafficSplit{Name: svc, RootService: svc, Backends: backends}); err != nil {
			return err
		}
		if err := m.SetPicker(svc, balancer.NewWeightedSplit(m.Splits(), rng.Fork(), nil)); err != nil {
			return err
		}
	}

	db := timeseries.NewDB(time.Minute)
	core.NewScraper(engine, db, m.Registry(), 5*time.Second).Start()

	// The declarative operator: only policies' targets are managed.
	policies := core.NewPolicyStore()
	ctrl := core.NewPolicyController(engine, m.Splits(), db, policies, core.PolicyControllerConfig{})
	ctrl.Start()

	if err := policies.Create(&core.OptimizationPolicy{Name: "checkout"}); err != nil {
		return err
	}
	if err := policies.Create(&core.OptimizationPolicy{
		Name:       "search",
		Percentile: 0.999,
		FilterKind: ewma.KindPeak,
		Penalty:    300 * time.Millisecond,
	}); err != nil {
		return err
	}

	// 120 RPS across the three services from cluster-1.
	for _, svc := range services {
		svc := svc
		gen := loadgen.New(engine, loadgen.Config{Rate: loadgen.ConstantRate(40)},
			func(done func(time.Duration, bool)) error {
				return m.Call("cluster-1", svc, func(r mesh.Result) { done(r.Latency, r.Success) })
			})
		gen.Start()
	}

	printShares := func() {
		fmt.Printf("t=%-5v", engine.Now())
		for _, svc := range services {
			ts, _ := m.Splits().Get(svc)
			var total, slow int64
			for _, b := range ts.Backends {
				total += b.Weight
				if b.Service == svc+"-cluster-3" {
					slow = b.Weight
				}
			}
			fmt.Printf("  %s[slow-share %4.1f%%]", svc, float64(slow)/float64(total)*100)
		}
		fmt.Println()
	}

	engine.Every(time.Minute, printShares)
	engine.At(3*time.Minute+1*time.Second, func() {
		fmt.Println("-- deleting the checkout policy: its split freezes from here --")
		_ = policies.Delete("checkout")
	})
	engine.RunUntil(5*time.Minute + 2*time.Second)
	fmt.Println("managed at end:", ctrl.Managed(), "— logs was never touched (33.3% throughout)")
	return nil
}
