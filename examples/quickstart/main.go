// Quickstart: build a three-cluster service mesh with one replicated
// service, run the same workload under round-robin and under L3, and
// compare tail latency.
//
// This is the smallest end-to-end use of the library: a discrete-event
// mesh, a TrafficSplit, the L3 controller pipeline (scraper → TSDB →
// collector → weight assigner → rate controller) and a constant-throughput
// load generator, all on a virtual clock — a 5-minute experiment simulates
// in well under a second.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/core"
	"l3/internal/loadgen"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/timeseries"
	"l3/internal/wan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("three clusters, one service; cluster-3's deployment is slow (250ms vs 40ms)")
	for _, useL3 := range []bool{false, true} {
		rec, err := experiment(useL3)
		if err != nil {
			return err
		}
		name := "round-robin"
		if useL3 {
			name = "L3        "
		}
		fmt.Printf("  %s  p50=%-12v p99=%-12v (%d requests)\n",
			name, rec.Quantile(0.5), rec.Quantile(0.99), rec.Count())
	}
	return nil
}

func experiment(useL3 bool) (*loadgen.Recorder, error) {
	engine := sim.NewEngine()
	rng := sim.NewRand(42)

	// The mesh: a WAN with ~10ms inter-cluster RTT and a Linkerd-style
	// metrics registry the scraper reads.
	m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())

	// One service, deployed in three clusters. Cluster-3 is degraded.
	if _, err := m.AddService("books"); err != nil {
		return nil, err
	}
	latencies := map[string]time.Duration{
		"cluster-1": 40 * time.Millisecond,
		"cluster-2": 50 * time.Millisecond,
		"cluster-3": 250 * time.Millisecond,
	}
	var backends []smi.Backend
	for cluster, lat := range latencies {
		lat := lat
		profile := func(_ time.Duration, r *sim.Rand) (time.Duration, bool) {
			return sim.NewLogNormalFromQuantiles(lat, 4*lat).Sample(r), true
		}
		name := "books-" + cluster
		if _, err := m.AddBackend("books", name, cluster, backend.Config{}, profile); err != nil {
			return nil, err
		}
		backends = append(backends, smi.Backend{Service: name, Weight: 500})
	}

	if useL3 {
		// The SMI TrafficSplit L3 steers, starting with equal weights.
		if err := m.Splits().Create(&smi.TrafficSplit{
			Name: "books", RootService: "books", Backends: backends,
		}); err != nil {
			return nil, err
		}
		// Data plane: route proportionally to the split's weights.
		if err := m.SetPicker("books", balancer.NewWeightedSplit(m.Splits(), rng.Fork(), nil)); err != nil {
			return nil, err
		}
		// Control plane: scrape every 5s, collect windowed metrics, run
		// Algorithm 1 + Algorithm 2, write weights back.
		db := timeseries.NewDB(time.Minute)
		core.NewScraper(engine, db, m.Registry(), 5*time.Second).Start()
		ctrl := core.NewController(engine, m.Splits(), core.NewCollector(db), core.ControllerConfig{
			NewAssigner: func() core.Assigner {
				return core.NewL3Assigner(core.WeightingConfig{}, core.RateControlConfig{}, true)
			},
		})
		ctrl.Start()
	} else {
		if err := m.SetPicker("books", balancer.NewRoundRobin()); err != nil {
			return nil, err
		}
	}

	// A wrk2-style constant-throughput client in cluster-1: 100 RPS with a
	// 30-second warm-up before measurement.
	gen := loadgen.New(engine, loadgen.Config{
		Rate:   loadgen.ConstantRate(100),
		WarmUp: 30 * time.Second,
	}, func(done func(time.Duration, bool)) error {
		return m.Call("cluster-1", "books", func(r mesh.Result) {
			done(r.Latency, r.Success)
		})
	})
	gen.Start()

	engine.RunUntil(5*time.Minute + 30*time.Second)
	return gen.Recorder(), nil
}
