// Rate control: Algorithm 2 under a load surge.
//
// Two of three backends are fast, one is slower; L3's weight assigner
// concentrates traffic on the fast ones. At minute 2 the offered load
// quadruples, pushing the favoured backends toward their capacity. The
// rate controller detects the RPS jump (relative change c > 0) and spreads
// the surge across all backends; when the surge subsides (c < 0) it shifts
// share back to the fast ones opportunistically. The example prints the
// weight distribution and the controller's relative-change signal around
// both transitions, with and without Algorithm 2.
//
// Run with: go run ./examples/ratecontrol
package main

import (
	"fmt"
	"os"
	"time"

	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/core"
	"l3/internal/loadgen"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/timeseries"
	"l3/internal/wan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ratecontrol:", err)
		os.Exit(1)
	}
}

// surge quadruples the load between minutes 2 and 3.
func surge(now time.Duration) float64 {
	if now >= 2*time.Minute && now < 3*time.Minute {
		return 400
	}
	return 100
}

func run() error {
	for _, enabled := range []bool{true, false} {
		rec, err := experiment(enabled)
		if err != nil {
			return err
		}
		fmt.Printf("rate control %-5v p99=%-12v success=%.2f%%\n\n",
			enabled, rec.Quantile(0.99), rec.SuccessRate()*100)
	}
	return nil
}

func experiment(rateControl bool) (*loadgen.Recorder, error) {
	fmt.Printf("--- rate control %v ---\n", map[bool]string{true: "ON", false: "OFF (ablation)"}[rateControl])
	engine := sim.NewEngine()
	rng := sim.NewRand(3)
	m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())

	if _, err := m.AddService("api"); err != nil {
		return nil, err
	}
	// Fast backends have little headroom: 16 workers x ~20ms = ~800 RPS
	// nominal, but 400 RPS concentrated on two of them queues visibly.
	specs := map[string]time.Duration{
		"cluster-1": 20 * time.Millisecond,
		"cluster-2": 25 * time.Millisecond,
		"cluster-3": 120 * time.Millisecond,
	}
	var backends []smi.Backend
	for c, lat := range specs {
		lat := lat
		profile := func(_ time.Duration, r *sim.Rand) (time.Duration, bool) {
			return sim.NewLogNormalFromQuantiles(lat, 3*lat).Sample(r), true
		}
		name := "api-" + c
		if _, err := m.AddBackend("api", name, c, backend.Config{Concurrency: 16}, profile); err != nil {
			return nil, err
		}
		backends = append(backends, smi.Backend{Service: name, Weight: 500})
	}
	if err := m.Splits().Create(&smi.TrafficSplit{Name: "api", RootService: "api", Backends: backends}); err != nil {
		return nil, err
	}
	if err := m.SetPicker("api", balancer.NewWeightedSplit(m.Splits(), rng.Fork(), nil)); err != nil {
		return nil, err
	}

	db := timeseries.NewDB(time.Minute)
	core.NewScraper(engine, db, m.Registry(), 5*time.Second).Start()
	var l3 *core.L3Assigner
	ctrl := core.NewController(engine, m.Splits(), core.NewCollector(db), core.ControllerConfig{
		NewAssigner: func() core.Assigner {
			l3 = core.NewL3Assigner(core.WeightingConfig{}, core.RateControlConfig{}, rateControl)
			return l3
		},
	})
	ctrl.Start()

	gen := loadgen.New(engine, loadgen.Config{
		Rate:   surge,
		WarmUp: 30 * time.Second,
	}, func(done func(time.Duration, bool)) error {
		return m.Call("cluster-1", "api", func(r mesh.Result) { done(r.Latency, r.Success) })
	})
	gen.Start()

	engine.Every(30*time.Second, func() {
		ts, _ := m.Splits().Get("api")
		var total int64
		for _, b := range ts.Backends {
			total += b.Weight
		}
		fmt.Printf("  t=%-6v rps=%-4.0f shares:", engine.Now(), surge(engine.Now()))
		for _, b := range ts.Backends {
			fmt.Printf(" %s=%4.1f%%", b.Service[4:], float64(b.Weight)/float64(total)*100)
		}
		if l3 != nil && l3.RateController() != nil {
			fmt.Printf("  c=%+.2f", l3.RateController().LastRelativeChange())
		}
		fmt.Println()
	})

	engine.RunUntil(4*time.Minute + 30*time.Second)
	return gen.Recorder(), nil
}
