// Failover: success-rate-aware steering plus high-availability leader
// election.
//
// A three-cluster service suffers a deep availability dip in one cluster
// (success collapses to ~30% for a minute, as in the paper's failure-1
// scenario). Two L3 replicas run in an HA pair: only the lease-holding
// leader writes weights; halfway through the run the leader is killed and
// the standby takes over. The example shows (a) the success-rate penalty of
// Equation 3 steering traffic away from the failing cluster and (b) the
// takeover keeping the control loop alive.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"os"
	"time"

	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/cluster"
	"l3/internal/core"
	"l3/internal/loadgen"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/timeseries"
	"l3/internal/wan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func run() error {
	engine := sim.NewEngine()
	rng := sim.NewRand(11)
	m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())

	if _, err := m.AddService("api"); err != nil {
		return err
	}
	// cluster-2's deployment fails hard between minutes 2 and 3.
	failWindow := func(now time.Duration) bool {
		return now >= 2*time.Minute+30*time.Second && now < 3*time.Minute+30*time.Second
	}
	var backends []smi.Backend
	for _, c := range []string{"cluster-1", "cluster-2", "cluster-3"} {
		c := c
		profile := func(now time.Duration, r *sim.Rand) (time.Duration, bool) {
			lat := sim.NewLogNormalFromQuantiles(30*time.Millisecond, 120*time.Millisecond).Sample(r)
			ok := true
			if c == "cluster-2" && failWindow(now) {
				ok = r.Bool(0.3)
			}
			return lat, ok
		}
		name := "api-" + c
		if _, err := m.AddBackend("api", name, c, backend.Config{}, profile); err != nil {
			return err
		}
		backends = append(backends, smi.Backend{Service: name, Weight: 500})
	}
	if err := m.Splits().Create(&smi.TrafficSplit{
		Name: "api", RootService: "api", Backends: backends,
	}); err != nil {
		return err
	}
	if err := m.SetPicker("api", balancer.NewWeightedSplit(m.Splits(), rng.Fork(), nil)); err != nil {
		return err
	}

	db := timeseries.NewDB(time.Minute)
	core.NewScraper(engine, db, m.Registry(), 5*time.Second).Start()

	// Two L3 replicas compete for one lease; only the leader writes.
	lock := cluster.NewLeaseLock()
	newController := func(id string) *core.Controller {
		return core.NewController(engine, m.Splits(), core.NewCollector(db), core.ControllerConfig{
			NewAssigner: func() core.Assigner {
				return core.NewL3Assigner(core.WeightingConfig{}, core.RateControlConfig{}, true)
			},
			Elector: cluster.NewElector(engine, lock, cluster.ElectorConfig{
				ID:               id,
				OnStartedLeading: func() { fmt.Printf("  t=%-6v %s became leader\n", engine.Now(), id) },
				OnStoppedLeading: func() { fmt.Printf("  t=%-6v %s stopped leading\n", engine.Now(), id) },
			}),
		})
	}
	leader := newController("l3-replica-a")
	standby := newController("l3-replica-b")
	leader.Start()
	standby.Start()

	// Kill the leader at minute 2; the standby should take over once the
	// lease expires.
	engine.At(2*time.Minute, func() {
		fmt.Printf("  t=%-6v killing l3-replica-a\n", engine.Now())
		leader.Stop()
	})

	gen := loadgen.New(engine, loadgen.Config{
		Rate:   loadgen.ConstantRate(150),
		WarmUp: 30 * time.Second,
	}, func(done func(time.Duration, bool)) error {
		return m.Call("cluster-1", "api", func(r mesh.Result) { done(r.Latency, r.Success) })
	})
	gen.Start()

	// Report cluster-2's traffic share each minute.
	var lastC2 float64
	engine.Every(time.Minute, func() {
		ts, _ := m.Splits().Get("api")
		var total, c2 int64
		for _, b := range ts.Backends {
			total += b.Weight
			if b.Service == "api-cluster-2" {
				c2 = b.Weight
			}
		}
		share := float64(c2) / float64(total) * 100
		marker := ""
		if failWindow(engine.Now()) {
			marker = "  <- cluster-2 failing"
		}
		fmt.Printf("  t=%-6v cluster-2 weight share %5.1f%%%s\n", engine.Now(), share, marker)
		lastC2 = share
	})

	engine.RunUntil(5*time.Minute + 30*time.Second)
	_ = lastC2

	rec := gen.Recorder()
	fmt.Printf("overall: %d requests, success %.2f%%, p99 %v\n",
		rec.Count(), rec.SuccessRate()*100, rec.Quantile(0.99))
	fmt.Println("(compare: a round-robin mesh would keep 33% on the failing cluster throughout)")
	return nil
}
