// Hotel reservation: the DeathStarBench workload of the paper's Figure 9 —
// 17 services (8 microservices plus caches and MongoDB tiers) deployed
// into three clusters, with EC2-style performance variability, under
// round-robin, the C3 adaptation and L3.
//
// One L3 (or C3) controller instance runs per cluster, each reading its
// own cluster's proxy metrics and steering its own cluster's
// TrafficSplits, as §3 of the paper describes for production deployments.
//
// Run with: go run ./examples/hotelreservation
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"l3/internal/balancer"
	"l3/internal/c3"
	"l3/internal/core"
	"l3/internal/dsb"
	"l3/internal/loadgen"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/timeseries"
	"l3/internal/wan"
)

var clusters = []string{"cluster-1", "cluster-2", "cluster-3"}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hotelreservation:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("DeathStarBench hotel-reservation across three clusters, 200 RPS for 3 minutes")
	for _, mode := range []string{"round-robin", "c3", "l3"} {
		rec, err := experiment(mode)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s p50=%-12v p99=%-12v\n", mode, rec.Quantile(0.5), rec.Quantile(0.99))
	}
	return nil
}

func experiment(mode string) (*loadgen.Recorder, error) {
	engine := sim.NewEngine()
	rng := sim.NewRand(7)
	m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())

	// Install the application graph into every cluster, with multi-tenant
	// performance variability (drifts plus stall episodes).
	app, err := dsb.InstallHotelReservation(m, clusters, rng.Fork(), dsb.WithPerfVariation())
	if err != nil {
		return nil, err
	}

	switch mode {
	case "round-robin":
		if err := app.SetPickerAll(func(string) mesh.Picker { return balancer.NewRoundRobin() }); err != nil {
			return nil, err
		}
	case "c3", "l3":
		// Per-source TrafficSplits: each cluster owns one split per
		// service, named "<cluster>/<service>".
		if err := app.CreateSplits(); err != nil {
			return nil, err
		}
		if err := app.SetPickerAll(func(string) mesh.Picker {
			return balancer.NewWeightedSplit(m.Splits(), rng.Fork(), dsb.SplitName)
		}); err != nil {
			return nil, err
		}
		db := timeseries.NewDB(time.Minute)
		core.NewScraper(engine, db, m.Registry(), 5*time.Second).Start()
		// One controller per cluster, scoped to that cluster's metrics
		// and splits.
		for _, c := range clusters {
			c := c
			collector := core.NewCollector(db)
			collector.Match = metrics.Labels{"src": c}
			ctrl := core.NewController(engine, m.Splits(), collector, core.ControllerConfig{
				NewAssigner: func() core.Assigner {
					if mode == "c3" {
						return c3.New(c3.Config{})
					}
					return core.NewL3Assigner(core.WeightingConfig{}, core.RateControlConfig{}, true)
				},
				SplitFilter: func(name string) bool { return strings.HasPrefix(name, c+"/") },
			})
			ctrl.Start()
		}
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}

	// The benchmark client sends to the cluster-local frontend.
	gen := loadgen.New(engine, loadgen.Config{
		Rate:   loadgen.ConstantRate(200),
		WarmUp: 30 * time.Second,
	}, func(done func(time.Duration, bool)) error {
		return m.Call("cluster-1", dsb.EntryService, func(r mesh.Result) {
			done(r.Latency, r.Success)
		})
	})
	gen.Start()
	engine.RunUntil(30*time.Second + 3*time.Minute)
	return gen.Recorder(), nil
}
